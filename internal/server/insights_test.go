package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/remote"
	"repro/internal/shard"
)

// explainOn POSTs /api/explain against a server and decodes the answer.
func explainOn(t *testing.T, srv *Server, cql string) ExplainDTO {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/api/explain",
		strings.NewReader(`{"cql": `+string(mustJSON(t, cql))+`}`))
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("explain: HTTP %d: %s", w.Code, w.Body.String())
	}
	var dto ExplainDTO
	if err := json.Unmarshal(w.Body.Bytes(), &dto); err != nil {
		t.Fatal(err)
	}
	return dto
}

// storeStats fetches the /api/stats store section.
func storeStats(t *testing.T, srv *Server) StoreStatsDTO {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	var dto StatsDTO
	if err := json.Unmarshal(w.Body.Bytes(), &dto); err != nil {
		t.Fatal(err)
	}
	if dto.Store == nil {
		t.Fatal("no store section on /api/stats")
	}
	return *dto.Store
}

// TestExplainEndpointSharded: EXPLAIN over a lazy sharded store must
// report per-shard per-chunk verdicts WITHOUT decoding a single chunk —
// the whole point of a dry run.
func TestExplainEndpointSharded(t *testing.T) {
	tbl := datagen.Census(6000, 3)
	path := filepath.Join(t.TempDir(), "census.atlm")
	if _, err := shard.WriteSharded(path, tbl, shard.IngestOptions{Shards: 3, ChunkSize: 256}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewFromStoreWith(path, core.DefaultOptions(), StoreConfig{
		Store: colstore.Options{Mode: colstore.ModeLazy},
	})
	if err != nil {
		t.Fatal(err)
	}

	before := storeStats(t, srv)
	dto := explainOn(t, srv, "EXPLORE census WHERE age BETWEEN 25 AND 40")
	after := storeStats(t, srv)

	if after.ChunksDecoded != before.ChunksDecoded {
		t.Errorf("explain decoded %d chunks — a dry run must decode none",
			after.ChunksDecoded-before.ChunksDecoded)
	}
	if after.BytesRead != before.BytesRead {
		t.Errorf("explain read %d bytes from the store", after.BytesRead-before.BytesRead)
	}

	if !dto.Sharded || dto.Combined == nil || len(dto.Shards) != 3 {
		t.Fatalf("explain DTO shape: sharded=%v combined=%v shards=%d",
			dto.Sharded, dto.Combined != nil, len(dto.Shards))
	}
	c := dto.Combined
	if c.NumChunks == 0 || len(c.Verdicts) != c.NumChunks {
		t.Fatalf("combined dry run: %+v", c)
	}
	if c.ChunksPruned+c.ChunksFull+c.ChunksScanned != c.NumChunks {
		t.Errorf("combined verdicts don't partition the chunks: %+v", c)
	}
	if len(c.Preds) == 0 {
		t.Error("no per-predicate verdict counts")
	}
	for _, sd := range dto.Shards {
		if sd.Plane != "chunk" {
			t.Errorf("shard %d: plane = %q, want chunk (local shard)", sd.Shard, sd.Plane)
		}
		switch sd.Verdict {
		case string(engine.VerdictScan), string(engine.VerdictPrune), string(engine.VerdictFull):
		default:
			t.Errorf("shard %d: verdict %q", sd.Shard, sd.Verdict)
		}
		if sd.Explain == nil {
			t.Errorf("shard %d: no per-chunk dry run", sd.Shard)
		}
	}
	if dto.EstChunkFetches == 0 || dto.EstBytesDecoded == 0 {
		t.Errorf("no cold-cache I/O estimate: fetches=%d bytes=%d",
			dto.EstChunkFetches, dto.EstBytesDecoded)
	}
}

// TestExplainEndpointRemote: over a remote manifest the shards must be
// reported remote and routed on the statistics plane.
func TestExplainEndpointRemote(t *testing.T) {
	remoteManifest, _ := startRemoteManifest(t, 2)
	srv, err := NewFromStoreWith(remoteManifest, core.DefaultOptions(), StoreConfig{
		Remote: remote.NewOpener(remote.Options{Timeout: 10 * time.Second}),
	})
	if err != nil {
		t.Fatal(err)
	}
	dto := explainOn(t, srv, "EXPLORE census WHERE age BETWEEN 25 AND 60")
	if len(dto.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(dto.Shards))
	}
	for _, sd := range dto.Shards {
		if !sd.Remote {
			t.Errorf("shard %d: not reported remote", sd.Shard)
		}
		if sd.Plane != "stat" {
			t.Errorf("shard %d: plane = %q, want stat", sd.Shard, sd.Plane)
		}
		if sd.Verdict == "" || sd.Explain == nil {
			t.Errorf("shard %d: missing verdict or dry run", sd.Shard)
		}
	}
}

func TestExplainBadCQL(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/explain", "application/json",
		strings.NewReader(`{"cql": "EXPLORE nope WHERE"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestQueryLogEndpoint: every query — including failed ones — lands in
// the log with its resource bill; failed entries keep their span tree
// and the ?errors / ?n filters work.
func TestQueryLogEndpoint(t *testing.T) {
	ts := newTestServer(t)
	for _, cql := range []string{
		"EXPLORE census",
		"EXPLORE census WHERE age BETWEEN 25 AND 60",
	} {
		resp, err := http.Post(ts.URL+"/api/explore", "application/json",
			strings.NewReader(`{"cql": "`+cql+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("explore %q: HTTP %d", cql, resp.StatusCode)
		}
	}
	// One failing query: parse errors are observed too.
	resp, err := http.Post(ts.URL+"/api/explore", "application/json",
		strings.NewReader(`{"cql": "EXPLORE census WHERE"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	get := func(path string) QueryLogDTO {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d", path, resp.StatusCode)
		}
		var dto QueryLogDTO
		if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
			t.Fatal(err)
		}
		return dto
	}

	dto := get("/api/querylog")
	if dto.Total != 3 || dto.Depth == 0 || len(dto.Entries) != 3 {
		t.Fatalf("query log: total=%d depth=%d entries=%d", dto.Total, dto.Depth, len(dto.Entries))
	}
	// Newest first: the failed query is entry 0.
	if dto.Entries[0].Err == "" {
		t.Error("newest entry is not the failed query")
	}
	for i, e := range dto.Entries {
		if e.Op != "explore" || e.Input == "" || e.Ledger == nil {
			t.Errorf("entry %d incomplete: %+v", i, e)
		}
		if i > 0 && dto.Entries[i-1].Seq <= e.Seq {
			t.Errorf("entries not newest-first at %d", i)
		}
	}
	// Successful fast queries drop the span tree; failed ones keep it.
	if dto.Entries[0].Profile == nil {
		t.Error("failed entry lost its span tree")
	}
	if dto.Entries[1].Profile != nil {
		t.Error("fast successful entry retained a span tree")
	}

	errs := get("/api/querylog?errors=1")
	if len(errs.Entries) != 1 || errs.Entries[0].Err == "" {
		t.Fatalf("?errors=1 returned %d entries", len(errs.Entries))
	}
	if capped := get("/api/querylog?n=1"); len(capped.Entries) != 1 {
		t.Fatalf("?n=1 returned %d entries", len(capped.Entries))
	}
	if slow := get("/api/querylog?slow=1"); len(slow.Entries) != 0 {
		t.Fatalf("?slow=1 returned %d entries with no threshold set", len(slow.Entries))
	}
}

// TestExplorePerfettoProfile: ?profile=perfetto returns the trace as
// Chrome trace-event JSON alongside the ledger.
func TestExplorePerfettoProfile(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/explore?profile=perfetto", "application/json",
		strings.NewReader(`{"cql": "EXPLORE census WHERE age BETWEEN 20 AND 60"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var dto ResultDTO
	if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
		t.Fatal(err)
	}
	if dto.Ledger == nil {
		t.Fatal("no ledger on the response")
	}
	if len(dto.ProfilePerfetto) == 0 {
		t.Fatal("no perfetto profile on the response")
	}
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(dto.ProfilePerfetto, &f); err != nil {
		t.Fatalf("profilePerfetto is not valid trace-event JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 || f.DisplayTimeUnit != "ms" {
		t.Fatalf("perfetto export: %d events, unit %q", len(f.TraceEvents), f.DisplayTimeUnit)
	}
	var sawRoot bool
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" && ev.Name == "explore" {
			sawRoot = true
		}
	}
	if !sawRoot {
		t.Error("no explore root slice in the export")
	}
}

// TestStatsInsightsFields: /api/stats reports per-op latencies, the
// query-log depth, and the lifetime ledger totals.
func TestStatsInsightsFields(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/explore", "application/json",
		strings.NewReader(`{"cql": "EXPLORE census"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dto StatsDTO
	if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
		t.Fatal(err)
	}
	sv := dto.Server
	if sv == nil {
		t.Fatal("no server section")
	}
	op, ok := sv.Ops["explore"]
	if !ok || op.Count < 1 {
		t.Fatalf("ops[explore] = %+v (present=%v)", op, ok)
	}
	if sv.QueryLogDepth == 0 {
		t.Error("queryLogDepth = 0")
	}
	if sv.QueriesLogged < 1 {
		t.Errorf("queriesLogged = %d", sv.QueriesLogged)
	}
	if sv.LedgerTotals == nil {
		t.Error("no lifetime ledger totals")
	}
}
