package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/shard"
)

// TestNewFromStoreManifest: -store accepts a shard manifest, serves the
// combined table, runs sharded sessions and reports the layout.
func TestNewFromStoreManifest(t *testing.T) {
	tbl := datagen.Census(6000, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "census.atlm")
	if _, err := shard.WriteSharded(path, tbl, shard.IngestOptions{Shards: 3, ChunkSize: 256}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewFromStore(path, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if srv.Table().NumRows() != 6000 || srv.Table().Chunking() == nil {
		t.Fatal("sharded table not served chunk-aware")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Stateless exploration over the sharded table.
	resp, err := http.Post(ts.URL+"/api/explore", "application/json",
		strings.NewReader(`{"cql": "EXPLORE census WHERE age BETWEEN 20 AND 60"}`))
	if err != nil {
		t.Fatal(err)
	}
	var res ResultDTO
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.BaseCount == 0 || len(res.Maps) == 0 {
		t.Fatalf("explore over sharded store gave %d rows, %d maps", res.BaseCount, len(res.Maps))
	}

	// Session over the sharded table: explore then drill.
	resp, err = http.Post(ts.URL+"/api/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sess map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sid := ts.URL + "/api/sessions/0"
	resp, err = http.Post(sid+"/explore", "application/json",
		strings.NewReader(`{"cql": "EXPLORE census"}`))
	if err != nil {
		t.Fatal(err)
	}
	var node NodeDTO
	if err := json.NewDecoder(resp.Body).Decode(&node); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(node.Result.Maps) == 0 {
		t.Fatal("sharded session explore returned no maps")
	}
	resp, err = http.Post(sid+"/drill", "application/json", bytes.NewReader([]byte(`{"map":0,"region":0}`)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drill status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Shard layout endpoint with merged partials.
	resp, err = http.Get(ts.URL + "/api/shards")
	if err != nil {
		t.Fatal(err)
	}
	var shards ShardsDTO
	if err := json.NewDecoder(resp.Body).Decode(&shards); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !shards.Sharded || len(shards.Shards) != 3 || shards.Rows != 6000 {
		t.Fatalf("shards DTO = %+v", shards)
	}
	if len(shards.Columns) != srv.Table().NumCols() {
		t.Fatalf("merged columns = %d, want %d", len(shards.Columns), srv.Table().NumCols())
	}
	for _, c := range shards.Columns {
		if c.Rows != 6000 {
			t.Errorf("column %s merged rows = %d", c.Name, c.Rows)
		}
	}
}

// TestShardsEndpointUnsharded: a plain server answers sharded=false.
func TestShardsEndpointUnsharded(t *testing.T) {
	srv := New(datagen.Census(500, 1), core.DefaultOptions())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/api/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dto ShardsDTO
	if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
		t.Fatal(err)
	}
	if dto.Sharded || dto.Rows != 500 {
		t.Fatalf("dto = %+v", dto)
	}
}
