package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/shard"
)

// TestStatsEndpoint: /api/stats must report scan verdict counters after
// explorations, plus the lazy store I/O counters on memory-tiered
// stores.
func TestStatsEndpoint(t *testing.T) {
	tbl := datagen.Census(4_000, 1)
	path := filepath.Join(t.TempDir(), "census.atl")
	if err := colstore.WriteFile(path, tbl, 256); err != nil {
		t.Fatal(err)
	}
	srv, err := NewFromStoreWith(path, core.DefaultOptions(),
		StoreConfig{Store: colstore.Options{Mode: colstore.ModeLazy}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := strings.NewReader(`{"cql": "EXPLORE census WHERE age BETWEEN 20 AND 60"}`)
	resp, err := http.Post(ts.URL+"/api/explore", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore status = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dto StatsDTO
	if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
		t.Fatal(err)
	}
	if dto.Scan.ChunksScanned == 0 {
		t.Error("no chunks scanned recorded after an exploration")
	}
	if dto.Store == nil || !dto.Store.Lazy {
		t.Fatalf("store stats missing or not lazy: %+v", dto.Store)
	}
	if dto.Store.ChunksDecoded == 0 || dto.Store.BytesRead == 0 {
		t.Errorf("lazy store reported no I/O: %+v", dto.Store)
	}
}

// TestStatsEndpointSharded: the sharded variant reports opened-shard
// counts.
func TestStatsEndpointSharded(t *testing.T) {
	tbl := datagen.Census(4_000, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "census.atlm")
	if _, err := shard.WriteSharded(path, tbl, shard.IngestOptions{Shards: 2, ChunkSize: 256}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewFromStoreWith(path, core.DefaultOptions(),
		StoreConfig{Store: colstore.Options{Mode: colstore.ModeLazy}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := strings.NewReader(`{"cql": "EXPLORE census"}`)
	resp, err := http.Post(ts.URL+"/api/explore", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dto StatsDTO
	if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
		t.Fatal(err)
	}
	if dto.Store == nil || !dto.Store.Lazy {
		t.Fatalf("sharded store stats missing or not lazy: %+v", dto.Store)
	}
	if dto.Store.OpenedShards != 2 {
		t.Errorf("opened shards = %d, want 2", dto.Store.OpenedShards)
	}
}
