// Package server exposes the mapping engine over HTTP/JSON — the back
// end of the paper's third architecture layer (the Web GUI, Figure 6).
// It serves stateless explorations and stateful drill-down sessions.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/obsv"
	"repro/internal/par"
	"repro/internal/remote"
	"repro/internal/session"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Server holds one explorable table and its sessions. All requests that
// run with the server's default options share a single Cartographer —
// safe for concurrent use — so its column-stat cache warms once and
// serves every session and stateless exploration.
type Server struct {
	table *storage.Table
	opts  core.Options
	cart  *core.Cartographer // shared; nil only when opts fail validation
	// set is non-nil when serving a sharded table: sessions assemble
	// selections per shard, the stat cache fills from merged per-shard
	// partials, and /api/shards reports the layout.
	set *shard.Set
	// store is non-nil when serving a single-file store; with set it
	// feeds the lazy-I/O counters of /api/stats.
	store *colstore.Store
	// partialsOnce guards the merged per-column partials behind
	// /api/shards: tables are immutable, so the per-shard scans run once
	// and every later request serves the cached reduction.
	partialsOnce sync.Once
	partials     []*shard.ColumnPartial
	partialsErr  error

	mu       sync.Mutex
	sessions map[int]*session.Session
	nextID   int

	// Observability (see obsv.go): the lazily-built metric registry
	// behind GET /metrics, the fabric opener's traffic counters when
	// remote shards are served, the store I/O sampler, and the
	// slow-query log configuration.
	regOnce sync.Once
	reg     *obsv.Registry
	metrics *serverMetrics
	fabric  fabricStats
	ioStats func() colstore.IOStats

	slowMu        sync.Mutex
	slowThreshold time.Duration
	slowLog       func(format string, args ...any)

	// Query insights (see insights.go): the bounded query-log ring and
	// the lifetime ledger totals accumulated from every query's bill.
	qlog   *obsv.QueryLog
	totals *obsv.Ledger

	// wrec captures the query stream as a bounded, replayable workload
	// (see workload.go in this package): always on in memory, exported
	// by GET /api/workload, streamed to disk by atlasd -record-workload.
	wrec *workload.Recorder

	// fleet polls remote shard servers' own counters and rolls them up
	// into atlas_fabric_shard_* metric families and the fabric section
	// of /api/stats (see fleet.go); nil for unsharded servers.
	fleet *fleetPoller

	// Admission (see admission.go): the bounded concurrency gate and
	// drain switch every query handler passes through.
	gate *admissionGate
}

// New creates a server over a table with the given pipeline defaults.
func New(table *storage.Table, opts core.Options) *Server {
	s := &Server{table: table, opts: opts, sessions: map[int]*session.Session{},
		qlog: obsv.NewQueryLog(obsv.DefaultQueryLogDepth), totals: &obsv.Ledger{},
		gate: newAdmissionGate(),
		wrec: workload.NewRecorder(table.Name(), workload.RecorderOptions{MaxEntries: workloadCaptureDepth})}
	if cart, err := core.NewCartographer(table, opts); err == nil {
		s.cart = cart
	}
	return s
}

// NewSharded creates a server over an opened shard set: explorations run
// on the combined table with column statistics reduced from per-shard
// partials, and sessions keep their predicate-bitmap LRU keyed per
// shard.
func NewSharded(set *shard.Set, opts core.Options) *Server {
	s := &Server{table: set.Table(), opts: opts, set: set, sessions: map[int]*session.Session{},
		qlog: obsv.NewQueryLog(obsv.DefaultQueryLogDepth), totals: &obsv.Ledger{},
		gate: newAdmissionGate(),
		wrec: workload.NewRecorder(set.Table().Name(), workload.RecorderOptions{MaxEntries: workloadCaptureDepth})}
	if cart, err := core.NewCartographerWith(s.table, opts, set.Provider(opts.Parallelism)); err == nil {
		s.cart = cart
	}
	s.ioStats = set.IOStats
	s.fleet = newFleetPoller(set)
	return s
}

// NewFromStore opens an on-disk store and serves its table directly: no
// CSV re-parse on start, and every exploration scans with zone-map
// pruning and chunk-parallel sharding. path may be a single ".atl"
// segment store (see internal/colstore) or a shard manifest (see
// internal/shard) — manifests open every shard and serve the sharded
// table with fan-out explorations.
func NewFromStore(path string, opts core.Options) (*Server, error) {
	return NewFromStoreWith(path, opts, StoreConfig{})
}

// StoreConfig carries the memory-tier knobs of a store-backed server.
type StoreConfig struct {
	// Store is passed to every file open (residency mode, cache budget).
	Store colstore.Options
	// Defer postpones opening shard files until first touch (sharded
	// stores with a v2 manifest only).
	Defer bool
	// Remote opens http(s):// shard locations; nil uses a default
	// internal/remote opener, so remote manifests serve out of the box.
	Remote shard.RemoteOpener
}

// NewFromStoreWith is NewFromStore with explicit memory-tier options.
func NewFromStoreWith(path string, opts core.Options, sc StoreConfig) (*Server, error) {
	if shard.IsManifest(path) {
		opener := sc.Remote
		if opener == nil {
			opener = remote.NewOpener(remote.Options{})
		}
		set, err := shard.OpenWith(path, shard.Options{Store: sc.Store, Defer: sc.Defer, Remote: opener})
		if err != nil {
			return nil, err
		}
		srv := NewSharded(set, opts)
		if f, ok := opener.(fabricStats); ok {
			srv.fabric = f
		}
		return srv, nil
	}
	st, err := colstore.OpenWith(path, sc.Store)
	if err != nil {
		return nil, err
	}
	s := New(st.Table(), opts)
	s.store = st
	s.ioStats = st.IOStats
	return s, nil
}

// Table returns the served table.
func (s *Server) Table() *storage.Table { return s.table }

// cartFor returns the shared Cartographer when the effective options
// match the server defaults, and builds a throwaway one otherwise (WITH
// overrides change the pipeline configuration).
func (s *Server) cartFor(opts core.Options) (*core.Cartographer, error) {
	if s.cart != nil && opts == s.opts {
		return s.cart, nil
	}
	if s.set != nil {
		return core.NewCartographerWith(s.table, opts, s.set.Provider(opts.Parallelism))
	}
	return core.NewCartographer(s.table, opts)
}

// newSession builds a session on the shared Cartographer, sharded when
// the server serves a shard set.
func (s *Server) newSession(cart *core.Cartographer) *session.Session {
	if s.set != nil {
		return session.NewSharded(cart, s.set)
	}
	return session.New(cart)
}

// Handler returns the HTTP routing for the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/schema", s.handleSchema)
	mux.HandleFunc("POST /api/explore", s.handleExplore)
	mux.HandleFunc("POST /api/sessions", s.handleNewSession)
	mux.HandleFunc("GET /api/sessions/{id}", s.handleCurrent)
	mux.HandleFunc("GET /api/sessions/{id}/history", s.handleHistory)
	mux.HandleFunc("POST /api/sessions/{id}/explore", s.handleSessionExplore)
	mux.HandleFunc("POST /api/sessions/{id}/drill", s.handleDrill)
	mux.HandleFunc("POST /api/sessions/{id}/back", s.handleBack)
	mux.HandleFunc("POST /api/sessions/{id}/describe", s.handleDescribe)
	mux.HandleFunc("GET /api/sessions/{id}/personalized", s.handlePersonalized)
	mux.HandleFunc("GET /api/shards", s.handleShards)
	mux.HandleFunc("POST /api/explain", s.handleExplain)
	mux.HandleFunc("GET /api/querylog", s.handleQueryLog)
	mux.HandleFunc("GET /api/workload", s.handleWorkload)
	mux.HandleFunc("GET /api/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.Registry().Handler())
	return s.withObservability(mux)
}

// ---- DTOs ----

// FieldDTO describes one schema field.
type FieldDTO struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// SchemaDTO describes the served table.
type SchemaDTO struct {
	Table  string     `json:"table"`
	Rows   int        `json:"rows"`
	Fields []FieldDTO `json:"fields"`
}

// RegionDTO is one region of a map.
type RegionDTO struct {
	Query string  `json:"query"`
	Count int     `json:"count"`
	Cover float64 `json:"cover"`
}

// MapDTO is one ranked data map.
type MapDTO struct {
	Attrs   []string    `json:"attrs"`
	Entropy float64     `json:"entropy"`
	Regions []RegionDTO `json:"regions"`
}

// ResultDTO is the answer to one exploration.
type ResultDTO struct {
	Input     string   `json:"input"`
	TotalRows int      `json:"totalRows"`
	BaseCount int      `json:"baseCount"`
	ElapsedMs float64  `json:"elapsedMs"`
	Maps      []MapDTO `json:"maps"`
	Flagged   []string `json:"flagged,omitempty"`
	// Profile is the exploration's span tree, present when the request
	// asked for one (?profile=1). Offsets are nanoseconds from the
	// trace start; remote (shard-server) subtrees are flagged.
	Profile *obsv.SpanJSON `json:"profile,omitempty"`
	// ProfilePerfetto is the same trace as Chrome trace-event JSON
	// (?profile=perfetto) — save it to a file and open it in Perfetto.
	ProfilePerfetto json.RawMessage `json:"profilePerfetto,omitempty"`
	// Ledger is the query's resource bill — always present: every query
	// runs with a ledger threaded through its context.
	Ledger *obsv.LedgerSnapshot `json:"ledger,omitempty"`
}

// NodeDTO is one session node.
type NodeDTO struct {
	ID       int       `json:"id"`
	Parent   int       `json:"parent"`
	Children []int     `json:"children"`
	Result   ResultDTO `json:"result"`
}

func toResultDTO(r *core.Result) ResultDTO {
	out := ResultDTO{
		Input:     r.Input.String(),
		TotalRows: r.TotalRows,
		BaseCount: r.BaseCount,
		ElapsedMs: float64(r.Elapsed.Microseconds()) / 1000.0,
	}
	for _, m := range r.Maps {
		md := MapDTO{Attrs: m.Attrs, Entropy: m.Entropy}
		for _, reg := range m.Regions {
			md.Regions = append(md.Regions, RegionDTO{
				Query: reg.Query.String(),
				Count: reg.Count,
				Cover: reg.Cover,
			})
		}
		out.Maps = append(out.Maps, md)
	}
	for _, f := range r.Flagged {
		out.Flagged = append(out.Flagged, fmt.Sprintf("%s (%s)", f.Attr, f.Reason))
	}
	return out
}

func toNodeDTO(n *session.Node) NodeDTO {
	return NodeDTO{
		ID:       n.ID,
		Parent:   n.Parent,
		Children: append([]int(nil), n.Children...),
		Result:   toResultDTO(n.Result),
	}
}

// ---- handlers ----

type exploreRequest struct {
	CQL string `json:"cql"`
}

type drillRequest struct {
	Map    int `json:"map"`
	Region int `json:"region"`
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	dto := SchemaDTO{Table: s.table.Name(), Rows: s.table.NumRows()}
	for _, f := range s.table.Schema().Fields() {
		dto.Fields = append(dto.Fields, FieldDTO{Name: f.Name, Type: f.Type.String()})
	}
	writeJSON(w, http.StatusOK, dto)
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req exploreRequest
	if !readJSON(w, r, &req) {
		return
	}
	release, err := s.admit(r, "explore", req.CQL, workload.StatelessSession)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	qr := s.startQuery(r, "explore")
	res, err := s.runCQL(qr.ctx, req.CQL)
	tree := qr.finish(s, "explore", req.CQL, workload.StatelessSession, err)
	if err != nil {
		writeError(w, err)
		return
	}
	dto := toResultDTO(res)
	qr.attach(&dto, tree)
	writeJSON(w, http.StatusOK, dto)
}

// runCQL parses, binds and executes a stateless CQL exploration,
// honoring its WITH options. A trace span in ctx profiles the run.
func (s *Server) runCQL(ctx context.Context, input string) (*core.Result, error) {
	q, opts, err := cql.ParseAndBind(input, s.table)
	if err != nil {
		return nil, &badRequest{err}
	}
	effective, err := cql.ApplyOptions(s.opts, opts)
	if err != nil {
		return nil, &badRequest{err}
	}
	cart, err := s.cartFor(effective)
	if err != nil {
		return nil, err
	}
	return cart.ExploreCtx(ctx, q)
}

func (s *Server) handleNewSession(w http.ResponseWriter, _ *http.Request) {
	cart, err := s.cartFor(s.opts)
	if err != nil {
		writeError(w, err)
		return
	}
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.sessions[id] = s.newSession(cart)
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]int{"id": id})
}

// sessionFor resolves the request's session and its id — the id rides
// into the query log and the workload recorder (session affinity).
func (s *Server) sessionFor(r *http.Request) (*session.Session, int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, workload.StatelessSession, &badRequest{fmt.Errorf("invalid session id %q", r.PathValue("id"))}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, id, &notFound{fmt.Errorf("no session %d", id)}
	}
	return sess, id, nil
}

func (s *Server) handleSessionExplore(w http.ResponseWriter, r *http.Request) {
	sess, sid, err := s.sessionFor(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req exploreRequest
	if !readJSON(w, r, &req) {
		return
	}
	q, _, err := cql.ParseAndBind(req.CQL, s.table)
	if err != nil {
		writeError(w, &badRequest{err})
		return
	}
	release, err := s.admit(r, "session-explore", req.CQL, sid)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	qr := s.startQuery(r, "session-explore")
	node, err := sess.ExploreCtx(qr.ctx, q)
	tree := qr.finish(s, "session-explore", req.CQL, sid, err)
	if err != nil {
		writeError(w, err)
		return
	}
	sess.Prefetch(4) // anticipative computation, Section 5.1
	dto := toNodeDTO(node)
	qr.attach(&dto.Result, tree)
	writeJSON(w, http.StatusOK, dto)
}

func (s *Server) handleDrill(w http.ResponseWriter, r *http.Request) {
	sess, sid, err := s.sessionFor(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req drillRequest
	if !readJSON(w, r, &req) {
		return
	}
	input := fmt.Sprintf("drill map=%d region=%d", req.Map, req.Region)
	release, err := s.admit(r, "drill", input, sid)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	qr := s.startQuery(r, "drill")
	node, err := sess.DrillDownCtx(qr.ctx, req.Map, req.Region)
	tree := qr.finish(s, "drill", input, sid, err)
	if err != nil {
		// Cancellations and deadlines are the caller's lifecycle, not a
		// bad request — let writeError pick their status.
		if obsv.IsCancellation(err) {
			writeError(w, err)
		} else {
			writeError(w, &badRequest{err})
		}
		return
	}
	sess.Prefetch(4)
	dto := toNodeDTO(node)
	qr.attach(&dto.Result, tree)
	writeJSON(w, http.StatusOK, dto)
}

func (s *Server) handleBack(w http.ResponseWriter, r *http.Request) {
	sess, _, err := s.sessionFor(r)
	if err != nil {
		writeError(w, err)
		return
	}
	node, err := sess.Back()
	if err != nil {
		writeError(w, &badRequest{err})
		return
	}
	writeJSON(w, http.StatusOK, toNodeDTO(node))
}

func (s *Server) handleCurrent(w http.ResponseWriter, r *http.Request) {
	sess, _, err := s.sessionFor(r)
	if err != nil {
		writeError(w, err)
		return
	}
	node, err := sess.Current()
	if err != nil {
		writeError(w, &notFound{err})
		return
	}
	writeJSON(w, http.StatusOK, toNodeDTO(node))
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	sess, _, err := s.sessionFor(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var out []NodeDTO
	for _, n := range sess.History() {
		out = append(out, toNodeDTO(n))
	}
	writeJSON(w, http.StatusOK, out)
}

// ProfileDTO is one attribute explanation for a region.
type ProfileDTO struct {
	Attr     string  `json:"attr"`
	Interest float64 `json:"interest"`
	Summary  string  `json:"summary"`
}

// handleDescribe explains one region of the current node's maps: the
// Section 5.2 "why is this region interesting" view.
func (s *Server) handleDescribe(w http.ResponseWriter, r *http.Request) {
	sess, _, err := s.sessionFor(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req drillRequest
	if !readJSON(w, r, &req) {
		return
	}
	cur, err := sess.Current()
	if err != nil {
		writeError(w, &badRequest{err})
		return
	}
	if req.Map < 0 || req.Map >= len(cur.Result.Maps) {
		writeError(w, &badRequest{fmt.Errorf("map index %d out of range", req.Map)})
		return
	}
	m := cur.Result.Maps[req.Map]
	if req.Region < 0 || req.Region >= len(m.Regions) {
		writeError(w, &badRequest{fmt.Errorf("region index %d out of range", req.Region)})
		return
	}
	profiles, err := core.DescribeRegion(s.table, m.Regions[req.Region].Query)
	if err != nil {
		writeError(w, err)
		return
	}
	out := make([]ProfileDTO, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, ProfileDTO{Attr: p.Attr, Interest: p.Interest, Summary: p.String()})
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePersonalized returns the current node's maps re-ranked by the
// session's learned attribute interests (Section 5.2 personalization).
func (s *Server) handlePersonalized(w http.ResponseWriter, r *http.Request) {
	sess, _, err := s.sessionFor(r)
	if err != nil {
		writeError(w, err)
		return
	}
	cur, err := sess.Current()
	if err != nil {
		writeError(w, &notFound{err})
		return
	}
	maps := sess.PersonalizedMaps(cur.Result)
	var out []MapDTO
	for _, m := range maps {
		md := MapDTO{Attrs: m.Attrs, Entropy: m.Entropy}
		for _, reg := range m.Regions {
			md.Regions = append(md.Regions, RegionDTO{
				Query: reg.Query.String(),
				Count: reg.Count,
				Cover: reg.Cover,
			})
		}
		out = append(out, md)
	}
	writeJSON(w, http.StatusOK, out)
}

// ShardDTO describes one shard of a sharded table. Remote shards
// (served over the fabric by their own atlasd) additionally report the
// outcome and latency of a liveness probe.
type ShardDTO struct {
	File   string `json:"file"`
	Rows   int    `json:"rows"`
	Offset int    `json:"offset"`
	// Remote reports whether the shard is served over the fabric.
	Remote bool `json:"remote,omitempty"`
	// Opened reports whether the shard's backend has been opened
	// (deferred sets leave untouched shards unopened).
	Opened bool `json:"opened"`
	// Healthy is the probe outcome; omitted for local shards.
	Healthy *bool `json:"healthy,omitempty"`
	// LatencyMs is the probe round trip (remote shards only).
	LatencyMs float64 `json:"latencyMs,omitempty"`
	// Error carries the probe failure, if any.
	Error string `json:"error,omitempty"`
	// Replicas is the per-replica circuit-breaker state of a replicated
	// remote shard.
	Replicas []ReplicaDTO `json:"replicas,omitempty"`
}

// ReplicaDTO is one replica's breaker snapshot on GET /api/shards.
type ReplicaDTO struct {
	URL string `json:"url"`
	// State is "healthy", "tripped" (cooling down) or "probing"
	// (cooldown lapsed, next touch probes half-open).
	State string `json:"state"`
	// Fails is the current consecutive-failure count.
	Fails int `json:"fails,omitempty"`
	// LatencyMs is the last successful round trip.
	LatencyMs float64 `json:"latencyMs,omitempty"`
	// Error is the last failure seen, if any.
	Error string `json:"error,omitempty"`
}

// ShardsDTO describes the sharded layout behind the served table, plus
// merged per-column aggregates reduced from per-shard partials.
type ShardsDTO struct {
	Sharded      bool           `json:"sharded"`
	Partitioning string         `json:"partitioning,omitempty"`
	Key          string         `json:"key,omitempty"`
	ChunkSize    int            `json:"chunkSize,omitempty"`
	Rows         int            `json:"rows"`
	Shards       []ShardDTO     `json:"shards,omitempty"`
	Columns      []ShardColsDTO `json:"columns,omitempty"`
}

// ShardColsDTO is one column's merged aggregate: exact counts plus
// approximate quantiles from the merged per-shard sketches.
type ShardColsDTO struct {
	Name   string    `json:"name"`
	Rows   int       `json:"rows"`
	Nulls  int       `json:"nulls"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
	Mean   float64   `json:"mean,omitempty"`
	Median float64   `json:"median,omitempty"`
	Hist   []int     `json:"hist,omitempty"`
	Edges  []float64 `json:"histEdges,omitempty"`
}

// handleShards reports the shard layout and the merged partial
// statistics of the served table; unsharded servers report
// {"sharded": false}.
func (s *Server) handleShards(w http.ResponseWriter, _ *http.Request) {
	if s.set == nil {
		writeJSON(w, http.StatusOK, ShardsDTO{Sharded: false, Rows: s.table.NumRows()})
		return
	}
	m := s.set.Manifest()
	dto := ShardsDTO{
		Sharded:      true,
		Partitioning: string(m.Partitioning),
		Key:          m.Key,
		ChunkSize:    m.ChunkSize,
		Rows:         m.Rows,
	}
	// Probe shards concurrently: one slow or down remote shard costs one
	// probe's latency, not the sum over shards.
	healths := make([]shard.ShardHealthInfo, len(m.Shards))
	_ = par.For(len(m.Shards), len(m.Shards), func(i int) error {
		healths[i] = s.set.ShardHealth(i)
		return nil
	})
	for i, sf := range m.Shards {
		sd := ShardDTO{File: sf.File, Rows: sf.Rows, Offset: s.set.ShardOffset(i)}
		h := healths[i]
		sd.Remote, sd.Opened = h.Remote, h.Opened
		if h.Remote {
			healthy := h.Healthy
			sd.Healthy = &healthy
			sd.LatencyMs = float64(h.Latency.Microseconds()) / 1000.0
		}
		if h.Err != nil {
			sd.Error = h.Err.Error()
		}
		for _, r := range h.Replicas {
			rd := ReplicaDTO{
				URL:       r.URL,
				State:     r.State,
				Fails:     r.Fails,
				LatencyMs: float64(r.Latency.Microseconds()) / 1000.0,
			}
			if r.Err != nil {
				rd.Error = r.Err.Error()
			}
			sd.Replicas = append(sd.Replicas, rd)
		}
		dto.Shards = append(dto.Shards, sd)
	}
	s.partialsOnce.Do(func() {
		s.partials, s.partialsErr = s.set.Partials(s.opts.Parallelism)
	})
	if s.partialsErr != nil {
		writeError(w, s.partialsErr)
		return
	}
	for ci, p := range s.partials {
		col := ShardColsDTO{Name: s.table.Schema().Field(ci).Name, Rows: p.Rows, Nulls: p.Nulls}
		if p.HasMinMax {
			col.Min, col.Max = p.Min, p.Max
			if p.Count > 0 {
				col.Mean = p.Sum / float64(p.Count)
			}
			if p.Quantiles != nil && p.Quantiles.Count() > 0 {
				col.Median = p.Quantiles.Median()
			}
			if p.Hist != nil {
				col.Hist = p.Hist.Counts
				col.Edges = p.Hist.Edges
			}
		}
		dto.Columns = append(dto.Columns, col)
	}
	writeJSON(w, http.StatusOK, dto)
}

// ScanStatsDTO reports the shared Cartographer's cumulative chunk-level
// scan decisions — the pruning-efficacy view of production traffic.
type ScanStatsDTO struct {
	ChunksPruned   int64 `json:"chunksPruned"`
	ChunksFull     int64 `json:"chunksFull"`
	ChunksScanned  int64 `json:"chunksScanned"`
	ChunksDecoded  int64 `json:"chunksDecoded"`
	ChunkCacheHits int64 `json:"chunkCacheHits"`
}

// StoreStatsDTO reports a memory-tiered store's I/O counters.
type StoreStatsDTO struct {
	Lazy           bool  `json:"lazy"`
	BytesRead      int64 `json:"bytesRead"`
	ChunksDecoded  int64 `json:"chunksDecoded"`
	CacheHits      int64 `json:"cacheHits"`
	CacheEvictions int64 `json:"cacheEvictions"`
	CacheBytes     int64 `json:"cacheBytes"`
	OpenedShards   int   `json:"openedShards,omitempty"`
}

// FabricStatsDTO reports the remote opener's aggregate traffic plus,
// for coordinators, the fleet rollup: each remote shard server's own
// counters polled over GET /shard/v1/stats (see fleet.go).
type FabricStatsDTO struct {
	RPCs         int64 `json:"rpcs"`
	BytesIn      int64 `json:"bytesIn"`
	ChunkFetches int64 `json:"chunkFetches"`
	Retries      int64 `json:"retries"`
	Failovers    int64 `json:"failovers"`
	BreakerTrips int64 `json:"breakerTrips"`
	// Shards is the per-shard-server rollup; ShardsHealthy counts the
	// members that answered the last poll and are not draining.
	Shards        []FabricShardDTO `json:"shards,omitempty"`
	ShardsHealthy int              `json:"shardsHealthy,omitempty"`
}

// OpLatencyDTO is one operation's latency summary on /api/stats.
type OpLatencyDTO struct {
	Count int64   `json:"count"`
	P50s  float64 `json:"p50s"`
	P99s  float64 `json:"p99s"`
}

// ServerStatsDTO reports the HTTP layer's own counters, with latency
// quantiles estimated from the explore histogram — across every
// operation kind, and broken out per op (explore, session-explore,
// drill) so drill-downs and session explores report their own tails.
type ServerStatsDTO struct {
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Explores    int64   `json:"explores"`
	SlowQueries int64   `json:"slowQueries"`
	ExploreP50s float64 `json:"exploreP50s"`
	ExploreP99s float64 `json:"exploreP99s"`
	// Ops holds per-operation latency summaries.
	Ops map[string]OpLatencyDTO `json:"ops,omitempty"`
	// QueryLogDepth / QueriesLogged describe the query-log ring.
	QueryLogDepth int    `json:"queryLogDepth"`
	QueriesLogged uint64 `json:"queriesLogged"`
	// LedgerTotals accumulates every query's resource bill since start.
	LedgerTotals *obsv.LedgerSnapshot `json:"ledgerTotals,omitempty"`
}

// StatsDTO is the /api/stats answer.
type StatsDTO struct {
	Scan      ScanStatsDTO       `json:"scan"`
	Store     *StoreStatsDTO     `json:"store,omitempty"`
	Fabric    *FabricStatsDTO    `json:"fabric,omitempty"`
	Server    *ServerStatsDTO    `json:"server,omitempty"`
	Admission *AdmissionStatsDTO `json:"admission,omitempty"`
}

// handleStats reports scan-level pruning counters and, for store-backed
// servers, the lazy I/O counters — how many chunks production traffic
// actually decoded versus pruned.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	dto := StatsDTO{}
	if s.cart != nil {
		sn := s.cart.ScanStats()
		dto.Scan = ScanStatsDTO{
			ChunksPruned:   sn.ChunksPruned,
			ChunksFull:     sn.ChunksFull,
			ChunksScanned:  sn.ChunksScanned,
			ChunksDecoded:  sn.ChunksDecoded,
			ChunkCacheHits: sn.ChunkCacheHits,
		}
	}
	switch {
	case s.set != nil:
		io := s.set.IOStats()
		dto.Store = &StoreStatsDTO{
			Lazy:           s.set.LazyViews(),
			BytesRead:      io.BytesRead,
			ChunksDecoded:  io.ChunksDecoded,
			CacheHits:      io.CacheHits,
			CacheEvictions: io.CacheEvictions,
			CacheBytes:     io.CacheBytes,
			OpenedShards:   s.set.OpenedShards(),
		}
	case s.store != nil:
		io := s.store.IOStats()
		dto.Store = &StoreStatsDTO{
			Lazy:           s.store.Lazy(),
			BytesRead:      io.BytesRead,
			ChunksDecoded:  io.ChunksDecoded,
			CacheHits:      io.CacheHits,
			CacheEvictions: io.CacheEvictions,
			CacheBytes:     io.CacheBytes,
		}
	}
	if s.fabric != nil {
		fs := s.fabric.Stats()
		dto.Fabric = &FabricStatsDTO{
			RPCs:         fs.RPCs,
			BytesIn:      fs.BytesIn,
			ChunkFetches: fs.ChunkFetches,
			Retries:      fs.Retries,
			Failovers:    fs.Failovers,
			BreakerTrips: fs.BreakerTrips,
		}
	}
	if shards := s.fleetStats(); shards != nil {
		if dto.Fabric == nil {
			dto.Fabric = &FabricStatsDTO{}
		}
		dto.Fabric.Shards = shards
		for _, sh := range shards {
			if sh.OK && !sh.Draining {
				dto.Fabric.ShardsHealthy++
			}
		}
	}
	s.Registry()
	totals := s.totals.Snapshot()
	dto.Server = &ServerStatsDTO{
		Requests:      s.metrics.httpRequests.Value(),
		Errors:        s.metrics.httpErrors.Value(),
		Explores:      s.metrics.explores.Value(),
		SlowQueries:   s.metrics.slowQueries.Value(),
		ExploreP50s:   s.metrics.exploreHist.Quantile(0.5),
		ExploreP99s:   s.metrics.exploreHist.Quantile(0.99),
		Ops:           s.metrics.opLatencies(),
		QueryLogDepth: s.qlog.Depth(),
		QueriesLogged: s.qlog.Total(),
		LedgerTotals:  &totals,
	}
	dto.Admission = s.admissionStats()
	writeJSON(w, http.StatusOK, dto)
}

// ---- plumbing ----

type badRequest struct{ error }

func (b *badRequest) Unwrap() error { return b.error }

type notFound struct{ error }

func (n *notFound) Unwrap() error { return n.error }

func readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	defer r.Body.Close()
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, &badRequest{fmt.Errorf("invalid request body: %w", err)})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var br *badRequest
	var nf *notFound
	var oe *overloadError
	switch {
	case errors.As(err, &oe):
		// Admission refusal: tell well-behaved clients when to retry.
		w.Header().Set("Retry-After", strconv.Itoa(int(max(1, int64(oe.retryAfter/time.Second)))))
		status = oe.status
	case obsv.IsDeadline(err):
		// The query's wall-clock budget expired server-side.
		status = http.StatusGatewayTimeout
	case obsv.IsCancellation(err):
		// The caller went away; 499 per the de-facto convention. Nothing
		// is usually listening, but proxies and logs see the status.
		status = 499
	case errors.As(err, &br):
		status = http.StatusBadRequest
	case errors.As(err, &nf):
		status = http.StatusNotFound
	case strings.Contains(err.Error(), "cql:"):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
