package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datagen"
)

func TestNewFromStore(t *testing.T) {
	tbl := datagen.Census(2000, 1)
	path := filepath.Join(t.TempDir(), "census.atl")
	if err := colstore.WriteFile(path, tbl, 0); err != nil {
		t.Fatal(err)
	}
	srv, err := NewFromStore(path, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if srv.Table().Chunking() == nil {
		t.Fatal("store-served table is not chunk-aware")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/schema")
	if err != nil {
		t.Fatal(err)
	}
	var schema SchemaDTO
	if err := json.NewDecoder(resp.Body).Decode(&schema); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if schema.Table != "census" || schema.Rows != 2000 {
		t.Fatalf("schema = %+v", schema)
	}

	body := strings.NewReader(`{"cql": "EXPLORE census WHERE age BETWEEN 20 AND 60"}`)
	resp, err = http.Post(ts.URL+"/api/explore", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore status = %d", resp.StatusCode)
	}
	var res ResultDTO
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.BaseCount == 0 || len(res.Maps) == 0 {
		t.Fatalf("explore over store gave %d rows, %d maps", res.BaseCount, len(res.Maps))
	}

	if _, err := NewFromStore(filepath.Join(t.TempDir(), "missing.atl"), core.DefaultOptions()); err == nil {
		t.Error("missing store file must fail")
	}
}
