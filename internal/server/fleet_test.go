package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
)

// TestFleetRollup: a coordinator over a 2-shard remote manifest polls
// each shard server's own counters and rolls them up into
// atlas_fabric_shard_* families on /metrics and the fabric section of
// /api/stats — one scrape sees every member of the deployment.
func TestFleetRollup(t *testing.T) {
	remoteManifest, _ := startRemoteManifest(t, 2)
	opts := core.DefaultOptions()
	opts.Parallelism = 2
	srv, err := NewFromStoreWith(remoteManifest, opts, StoreConfig{
		Remote: remote.NewOpener(remote.Options{Timeout: 10 * time.Second}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// No TTL: every scrape re-polls, so the test never reads a stale
	// snapshot.
	srv.fleet.ttl = 0
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Generate shard-server traffic: an exploration fans statistics and
	// chunk requests out to both shards.
	resp, err := http.Post(ts.URL+"/api/explore", "application/json",
		bytes.NewReader([]byte(`{"cql":"EXPLORE census WHERE age BETWEEN 25 AND 60"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore answered %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		`atlas_fabric_shards_healthy 2`,
		`atlas_fabric_shard_up{`,
		`atlas_fabric_shard_requests_total{`,
		`atlas_fabric_shard_bytes_out_total{`,
		`atlas_fabric_shard_stat_computes_total{`,
		`atlas_fabric_shard_chunk_serves_total{`,
		`atlas_fabric_shard_cache_hit_rate{`,
		`atlas_build_info{`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	// Every shard appears as its own labeled series, and the polled
	// request counters are live (the explore touched both shards).
	for _, shardLbl := range []string{`shard="0"`, `shard="1"`} {
		found := false
		for _, line := range strings.Split(metrics, "\n") {
			if strings.HasPrefix(line, "atlas_fabric_shard_requests_total{") && strings.Contains(line, shardLbl) {
				found = true
				if strings.HasSuffix(line, " 0") {
					t.Errorf("shard request counter did not move: %q", line)
				}
			}
		}
		if !found {
			t.Errorf("no atlas_fabric_shard_requests_total series with %s", shardLbl)
		}
	}

	resp, err = http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dto StatsDTO
	if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
		t.Fatal(err)
	}
	if dto.Fabric == nil {
		t.Fatal("/api/stats has no fabric section")
	}
	if dto.Fabric.ShardsHealthy != 2 {
		t.Errorf("ShardsHealthy = %d, want 2", dto.Fabric.ShardsHealthy)
	}
	if len(dto.Fabric.Shards) != 2 {
		t.Fatalf("fabric shards = %d, want 2: %+v", len(dto.Fabric.Shards), dto.Fabric.Shards)
	}
	for _, sh := range dto.Fabric.Shards {
		if !sh.OK {
			t.Errorf("shard %d not polled: %+v", sh.Shard, sh)
		}
		if sh.Requests == 0 {
			t.Errorf("shard %d reports zero requests after an exploration", sh.Shard)
		}
		if !strings.HasPrefix(sh.Location, "http") {
			t.Errorf("shard %d location = %q", sh.Shard, sh.Location)
		}
	}
}

// TestFleetRollupLocalShards: local (non-remote) sharded servers have no
// fleet to poll — no atlas_fabric_shard_* families, no fabric shards on
// /api/stats.
func TestFleetRollupLocalShards(t *testing.T) {
	_, localManifest := startRemoteManifest(t, 2)
	opts := core.DefaultOptions()
	opts.Parallelism = 2
	srv, err := NewFromStoreWith(localManifest, opts, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if strings.Contains(buf.String(), "atlas_fabric_shard_") {
		t.Error("local sharded server rendered fleet families")
	}
	if !strings.Contains(buf.String(), "atlas_build_info{") {
		t.Error("local sharded server missing atlas_build_info")
	}
	resp, err = http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dto StatsDTO
	if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
		t.Fatal(err)
	}
	if dto.Fabric != nil && len(dto.Fabric.Shards) != 0 {
		t.Errorf("local sharded server reported fleet shards: %+v", dto.Fabric.Shards)
	}
}
