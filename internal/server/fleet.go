package server

import (
	"context"
	"strconv"
	"sync"
	"time"

	"repro/internal/obsv"
	"repro/internal/par"
	"repro/internal/shard"
)

// This file is the fleet rollup: the coordinator polls each remote
// shard server's own counters (GET /shard/v1/stats, one RPC per shard)
// and aggregates them into atlas_fabric_shard_* metric families on its
// own /metrics and the fabric section of /api/stats — one Prometheus
// scrape sees the whole deployment. Polls are cached with a short TTL
// and refreshed from the registry's scrape hook, so a scrape costs at
// most one concurrent round of stats RPCs and /api/stats piggybacks on
// the same snapshot.

// fleetPollTTL is how stale a cached fleet snapshot may be before the
// next scrape re-polls.
const fleetPollTTL = time.Second

// fleetPollTimeout bounds one polling round; a hung shard server costs
// a scrape this much at worst, never a wedged scrape.
const fleetPollTimeout = 2 * time.Second

// fleetShard is one shard's polled state.
type fleetShard struct {
	// Shard and Location identify the shard (manifest order, primary
	// location).
	Shard    int
	Location string
	// Remote reports whether the shard is served over the fabric; local
	// shards are never polled.
	Remote bool
	// Polled reports a successful stats RPC this round; false with a
	// nil Err means the backend lacks the capability (an old server).
	Polled bool
	// Err is the open or RPC failure of an attempted poll.
	Err error
	// Stats is the server's counter snapshot — on a failed poll, the
	// last good one (counters should not bounce to zero because one
	// probe timed out).
	Stats shard.ServerStats
}

// fleetPoller caches per-shard server stats behind a TTL.
type fleetPoller struct {
	set *shard.Set
	// ttl/timeout are configurable for tests; newFleetPoller sets the
	// production defaults.
	ttl     time.Duration
	timeout time.Duration

	mu       sync.Mutex
	last     []fleetShard
	lastPoll time.Time
}

func newFleetPoller(set *shard.Set) *fleetPoller {
	return &fleetPoller{set: set, ttl: fleetPollTTL, timeout: fleetPollTimeout}
}

// remoteShards lists the manifest indexes served over the fabric.
func (f *fleetPoller) remoteShards() []int {
	var out []int
	for i, sf := range f.set.Manifest().Shards {
		if shard.IsRemoteLocation(sf.File) {
			out = append(out, i)
		}
	}
	return out
}

// cached returns the last snapshot without polling (nil before the
// first poll).
func (f *fleetPoller) cached() []fleetShard {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// snapshot returns the per-shard stats, re-polling concurrently when
// the cache is older than the TTL.
func (f *fleetPoller) snapshot() []fleetShard {
	f.mu.Lock()
	if f.last != nil && time.Since(f.lastPoll) < f.ttl {
		out := f.last
		f.mu.Unlock()
		return out
	}
	prev := f.last
	f.mu.Unlock()

	m := f.set.Manifest()
	out := make([]fleetShard, len(m.Shards))
	ctx, cancel := context.WithTimeout(context.Background(), f.timeout)
	defer cancel()
	_ = par.For(len(m.Shards), len(m.Shards), func(i int) error {
		fs := fleetShard{Shard: i, Location: m.Shards[i].File, Remote: shard.IsRemoteLocation(m.Shards[i].File)}
		if fs.Remote {
			st, polled, err := f.set.ShardServerStats(ctx, i)
			fs.Err = err
			fs.Polled = polled && err == nil
			if fs.Polled {
				fs.Stats = st
			} else if prev != nil && i < len(prev) {
				fs.Stats = prev[i].Stats
			}
		}
		out[i] = fs
		return nil
	})
	f.mu.Lock()
	f.last, f.lastPoll = out, time.Now()
	f.mu.Unlock()
	return out
}

// register wires the fleet's metric families into the coordinator
// registry: a scrape hook refreshes the snapshot once, then per-shard
// funcs read it. Families are distinct from the opener-side
// atlas_fabric_* counters (which count the coordinator's OWN traffic);
// these are the shard servers' counters, labeled by shard and location.
func (f *fleetPoller) register(r *obsv.Registry) {
	remotes := f.remoteShards()
	if len(remotes) == 0 {
		return
	}
	r.OnScrape(func() { f.snapshot() })
	r.GaugeFunc("atlas_fabric_shards", "remote shard servers in the manifest", nil, func() float64 {
		return float64(len(remotes))
	})
	r.GaugeFunc("atlas_fabric_shards_healthy", "remote shard servers answering the stats RPC", nil, func() float64 {
		n := 0
		for _, fs := range f.cached() {
			if fs.Remote && fs.Polled && !fs.Stats.Draining {
				n++
			}
		}
		return float64(n)
	})
	m := f.set.Manifest()
	for _, i := range remotes {
		i := i
		lbl := map[string]string{"shard": strconv.Itoa(i), "location": m.Shards[i].File}
		at := func(get func(fleetShard) float64) func() float64 {
			return func() float64 {
				if c := f.cached(); i < len(c) {
					return get(c[i])
				}
				return 0
			}
		}
		r.GaugeFunc("atlas_fabric_shard_up", "1 when the shard server answered the last stats poll", lbl, at(func(fs fleetShard) float64 {
			if fs.Polled {
				return 1
			}
			return 0
		}))
		r.GaugeFunc("atlas_fabric_shard_draining", "1 while the shard server drains", lbl, at(func(fs fleetShard) float64 {
			if fs.Stats.Draining {
				return 1
			}
			return 0
		}))
		r.CounterFunc("atlas_fabric_shard_requests_total", "fabric requests the shard server has served", lbl, at(func(fs fleetShard) float64 {
			return float64(fs.Stats.Requests)
		}))
		r.CounterFunc("atlas_fabric_shard_bytes_out_total", "response bytes the shard server has sent", lbl, at(func(fs fleetShard) float64 {
			return float64(fs.Stats.BytesOut)
		}))
		r.CounterFunc("atlas_fabric_shard_stat_computes_total", "statistics cache misses computed on the shard server", lbl, at(func(fs fleetShard) float64 {
			return float64(fs.Stats.StatComputes)
		}))
		r.CounterFunc("atlas_fabric_shard_chunk_serves_total", "chunk payloads the shard server has served", lbl, at(func(fs fleetShard) float64 {
			return float64(fs.Stats.ChunkServes)
		}))
		r.GaugeFunc("atlas_fabric_shard_cache_hit_rate", "shard server decoded-chunk cache hit fraction", lbl, at(func(fs fleetShard) float64 {
			return fs.Stats.CacheHitRate()
		}))
	}
}

// FabricShardDTO is one shard server's rollup on /api/stats.
type FabricShardDTO struct {
	Shard    int    `json:"shard"`
	Location string `json:"location"`
	OK       bool   `json:"ok"`
	Error    string `json:"error,omitempty"`
	// Unsupported marks backends without the stats RPC.
	Unsupported   bool    `json:"unsupported,omitempty"`
	Requests      int64   `json:"requests"`
	BytesOut      int64   `json:"bytesOut"`
	StatComputes  int64   `json:"statComputes"`
	ChunkServes   int64   `json:"chunkServes"`
	CacheHitRate  float64 `json:"cacheHitRate"`
	Draining      bool    `json:"draining,omitempty"`
	BytesRead     int64   `json:"bytesRead,omitempty"`
	ChunksDecoded int64   `json:"chunksDecoded,omitempty"`
}

// fleetStats builds the per-shard rollup for /api/stats; nil when the
// server has no remote shards.
func (s *Server) fleetStats() []FabricShardDTO {
	if s.fleet == nil || len(s.fleet.remoteShards()) == 0 {
		return nil
	}
	var out []FabricShardDTO
	for _, fs := range s.fleet.snapshot() {
		if !fs.Remote {
			continue
		}
		d := FabricShardDTO{
			Shard:         fs.Shard,
			Location:      fs.Location,
			OK:            fs.Polled,
			Unsupported:   !fs.Polled && fs.Err == nil,
			Requests:      fs.Stats.Requests,
			BytesOut:      fs.Stats.BytesOut,
			StatComputes:  fs.Stats.StatComputes,
			ChunkServes:   fs.Stats.ChunkServes,
			CacheHitRate:  fs.Stats.CacheHitRate(),
			Draining:      fs.Stats.Draining,
			BytesRead:     fs.Stats.BytesRead,
			ChunksDecoded: fs.Stats.ChunksDecoded,
		}
		if fs.Err != nil {
			d.Error = fs.Err.Error()
		}
		out = append(out, d)
	}
	return out
}
