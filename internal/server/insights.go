package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cql"
	"repro/internal/engine"
	"repro/internal/obsv"
	"repro/internal/shard"
	"repro/internal/workload"
)

// This file is the query-insights surface: the per-query resource
// ledger and always-on tracing every exploration runs under, the
// EXPLAIN endpoint that dry-runs a query against manifest statistics
// and zone maps before any chunk I/O, and the bounded query log behind
// GET /api/querylog.

// profileMode reads the request's ?profile= parameter: "" (no profile
// in the response — the query is still traced for the query log),
// "tree" (the span-tree JSON of previous releases, profile=1|true) or
// "perfetto" (Chrome trace-event JSON, profile=perfetto).
func profileMode(r *http.Request) string {
	switch r.URL.Query().Get("profile") {
	case "1", "true", "tree":
		return "tree"
	case "perfetto":
		return "perfetto"
	default:
		return ""
	}
}

// queryRun bundles the per-query instrumentation every explore, session
// explore and drill-down runs under: a trace (always on — slow and
// failed queries keep their span tree in the query log), a resource
// ledger threaded through the context, and the wall clock.
type queryRun struct {
	ctx    context.Context
	cancel context.CancelFunc
	tr     *obsv.Trace
	root   *obsv.Span
	led    *obsv.Ledger
	mode   string
	start  time.Time
}

// startQuery opens the instrumentation for one query named op. When
// the server (or the request, via X-Atlas-Query-Timeout) sets a query
// budget, the context carries the wall-clock deadline: every layer
// below — scans, cuts, fabric RPCs, chunk loads — unwinds at it.
func (s *Server) startQuery(r *http.Request, op string) *queryRun {
	tr, root := obsv.NewTrace(op)
	led := obsv.NewLedger()
	rctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if d := s.queryBudget(r); d > 0 {
		rctx, cancel = context.WithTimeout(rctx, d)
	}
	ctx := obsv.WithLedger(obsv.WithSpan(rctx, root), led)
	return &queryRun{ctx: ctx, cancel: cancel, tr: tr, root: root, led: led, mode: profileMode(r), start: time.Now()}
}

// finish closes the trace and the ledger, feeds the metrics, the slow
// log, the query log and the workload recorder, and returns the
// finished span tree. sess is the drill-down session the query ran in
// (workload.StatelessSession for stateless explores).
func (qr *queryRun) finish(s *Server, op, input string, sess int, qerr error) *obsv.SpanJSON {
	qr.cancel()
	qr.root.End()
	qr.led.Finish()
	tree := qr.tr.Tree()
	s.observeQuery(op, obsv.RequestIDFrom(qr.ctx), input, sess, time.Since(qr.start), qerr, qr.mode != "", qr.led, tree)
	return tree
}

// attach copies the run's bill (and, when asked for, its profile) onto
// the response DTO.
func (qr *queryRun) attach(dto *ResultDTO, tree *obsv.SpanJSON) {
	snap := qr.led.Snapshot()
	dto.Ledger = &snap
	switch qr.mode {
	case "tree":
		dto.Profile = tree
	case "perfetto":
		if b, err := obsv.PerfettoTrace(tree); err == nil {
			dto.ProfilePerfetto = b
		}
	}
}

// ---- EXPLAIN ----

// ExplainShardDTO is one shard's routing decision and dry-run verdicts.
type ExplainShardDTO struct {
	Shard int    `json:"shard"`
	File  string `json:"file"`
	Rows  int    `json:"rows"`
	// Remote reports whether the shard is served over the fabric.
	Remote bool `json:"remote,omitempty"`
	// Plane is where the verdict was decided: "manifest" (per-shard
	// statistics proved the shard disjoint — no backend was touched),
	// "stat" (a remote shard: predicates route over the statistics
	// plane, chunks stream only for scan-verdict chunks) or "chunk" (a
	// local shard judged by its zone maps).
	Plane string `json:"plane"`
	// Verdict summarizes the shard: "prune" (no chunk can match),
	// "full" (zone maps answer every chunk — no chunk I/O) or "scan"
	// (at least one chunk needs its rows).
	Verdict string `json:"verdict"`
	// Explain carries the per-chunk dry run; nil for manifest-pruned
	// shards, which are never probed.
	Explain *engine.QueryExplain `json:"explain,omitempty"`
}

// ExplainDTO is the POST /api/explain answer: the plan of a query,
// computed from manifest statistics and zone maps before any chunk is
// decoded.
type ExplainDTO struct {
	Input   string `json:"input"`
	Sharded bool   `json:"sharded"`
	// Combined is the dry run against the combined table — the verdicts
	// the actual base scan would produce.
	Combined *engine.QueryExplain `json:"combined"`
	// Shards holds one entry per shard of a sharded table.
	Shards []ExplainShardDTO `json:"shards,omitempty"`
	// ShardsPruned counts shards dismissed on the manifest plane.
	ShardsPruned int `json:"shardsPruned,omitempty"`
	// EstChunkFetches / EstBytesDecoded total the combined dry run's
	// cold-cache I/O estimate.
	EstChunkFetches int   `json:"estChunkFetches"`
	EstBytesDecoded int64 `json:"estBytesDecoded"`
}

// shardVerdict folds a shard's dry run into one word: "scan" when any
// chunk needs its rows, otherwise "prune" when no chunk can match,
// otherwise "full" (every surviving chunk answered by its zone map).
func shardVerdict(ex *engine.QueryExplain) string {
	switch {
	case ex.Unchunked || ex.ChunksScanned > 0:
		return string(engine.VerdictScan)
	case ex.ChunksFull == 0:
		return string(engine.VerdictPrune)
	default:
		return string(engine.VerdictFull)
	}
}

// handleExplain dry-runs a CQL query: predicates are compiled and
// judged against manifest statistics and zone maps only, so the plan —
// per-shard routing, per-chunk verdicts, estimated bytes — comes back
// without decoding a single chunk.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req exploreRequest
	if !readJSON(w, r, &req) {
		return
	}
	q, _, err := cql.ParseAndBind(req.CQL, s.table)
	if err != nil {
		writeError(w, &badRequest{err})
		return
	}
	combined, err := engine.ExplainQuery(s.table, q)
	if err != nil {
		writeError(w, err)
		return
	}
	dto := ExplainDTO{
		Input:           q.String(),
		Sharded:         s.set != nil,
		Combined:        combined,
		EstChunkFetches: combined.EstChunkFetches,
		EstBytesDecoded: combined.EstBytesDecoded,
	}
	if s.set != nil {
		m := s.set.Manifest()
		for i, sf := range m.Shards {
			sd := ExplainShardDTO{Shard: i, File: sf.File, Rows: sf.Rows, Remote: shard.IsRemoteLocation(sf.File)}
			pruned := false
			for _, p := range q.Preds {
				if !s.set.ShardMayMatch(i, p) {
					pruned = true
					break
				}
			}
			if pruned {
				sd.Plane, sd.Verdict = "manifest", string(engine.VerdictPrune)
				dto.ShardsPruned++
				dto.Shards = append(dto.Shards, sd)
				continue
			}
			if sd.Remote {
				sd.Plane = "stat"
			} else {
				sd.Plane = "chunk"
			}
			ex, err := engine.ExplainQuery(s.set.ShardTable(i), q)
			if err != nil {
				writeError(w, err)
				return
			}
			sd.Explain, sd.Verdict = ex, shardVerdict(ex)
			dto.Shards = append(dto.Shards, sd)
		}
	}
	writeJSON(w, http.StatusOK, dto)
}

// ---- query log ----

// QueryLogDTO is the GET /api/querylog answer, newest first.
type QueryLogDTO struct {
	// Total is the lifetime number of queries logged; Depth how many the
	// ring currently holds.
	Total   uint64                `json:"total"`
	Depth   int                   `json:"depth"`
	Entries []*obsv.QueryLogEntry `json:"entries"`
}

// handleQueryLog serves the bounded query log. ?slow=1 keeps only
// entries at or over the slow-query threshold, ?errors=1 only failed
// queries, ?op=explore|session-explore|drill one operation kind,
// ?since=<seq> only entries strictly newer than a previously seen
// sequence number (incremental tailing: pass the highest seq you have),
// ?n= caps the count after filtering.
func (s *Server) handleQueryLog(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	slowOnly := q.Get("slow") == "1" || q.Get("slow") == "true"
	errOnly := q.Get("errors") == "1" || q.Get("errors") == "true"
	opOnly := q.Get("op")
	since, haveSince := uint64(0), false
	if sv := q.Get("since"); sv != "" {
		if parsed, err := strconv.ParseUint(sv, 10, 64); err == nil {
			since, haveSince = parsed, true
		} else {
			writeError(w, &badRequest{fmt.Errorf("invalid since %q", sv)})
			return
		}
	}
	n, _ := strconv.Atoi(q.Get("n"))
	entries := s.qlog.Entries()
	if slowOnly || errOnly || opOnly != "" || haveSince {
		kept := entries[:0]
		for _, e := range entries {
			if slowOnly && !e.Slow {
				continue
			}
			if errOnly && e.Err == "" {
				continue
			}
			if opOnly != "" && e.Op != opOnly {
				continue
			}
			if haveSince && e.Seq <= since {
				continue
			}
			kept = append(kept, e)
		}
		entries = kept
	}
	if n > 0 && len(entries) > n {
		entries = entries[:n]
	}
	if entries == nil {
		entries = []*obsv.QueryLogEntry{}
	}
	writeJSON(w, http.StatusOK, QueryLogDTO{Total: s.qlog.Total(), Depth: s.qlog.Depth(), Entries: entries})
}

// observeQuery records one finished query: the explore counters and
// per-op latency histogram, the lifetime ledger totals, the slow-query
// log, the query-log ring (slow and failed entries keep their span
// tree; fast successes drop it to bound memory) and the workload
// recorder. Inputs are capped at the workload byte budget before any
// of them, so a pathological CQL string can't bloat the ring or a
// recorded workload.
func (s *Server) observeQuery(op, rid, input string, sess int, dur time.Duration, qerr error, profiled bool, led *obsv.Ledger, tree *obsv.SpanJSON) {
	s.Registry() // ensure metrics exist
	input = workload.CapInput(input, 0)
	s.metrics.explores.Inc()
	s.metrics.exploreHist.ObserveDuration(dur)
	s.metrics.opHistogram(op).ObserveDuration(dur)
	if profiled {
		s.metrics.profiled.Inc()
	}
	snap := led.Snapshot()
	s.totals.Add(snap)
	threshold, logf := s.slowConfig()
	slow := threshold > 0 && dur >= threshold
	if slow && logf != nil {
		s.metrics.slowQueries.Inc()
		lrid := rid
		if lrid == "" {
			lrid = "-"
		}
		logf("slow query: rid=%s dur=%s cql=%q", lrid, dur, input)
	}
	entry := &obsv.QueryLogEntry{
		Time:      time.Now(),
		RequestID: rid,
		Op:        op,
		Input:     input,
		DurNs:     dur.Nanoseconds(),
		Slow:      slow,
		Ledger:    &snap,
	}
	if qerr != nil {
		entry.Err = qerr.Error()
	}
	// Classify the ending: deadline expiries and caller cancellations
	// are lifecycle outcomes, not ordinary errors — the log and the
	// counters keep them apart so overload shows up as itself.
	switch {
	case qerr == nil:
	case obsv.IsDeadline(qerr):
		entry.Outcome = "deadline"
		s.metrics.deadlineQueries.Inc()
	case obsv.IsCancellation(qerr):
		entry.Outcome = "cancelled"
		s.metrics.cancelledQueries.Inc()
	default:
		entry.Outcome = "error"
	}
	if slow || qerr != nil {
		entry.Profile = tree
	}
	s.qlog.Add(entry)
	s.wrec.Observe(op, input, sess, entry.Outcome, dur, &snap)
}
