package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

func newTestServer(t testing.TB) *httptest.Server {
	t.Helper()
	tbl := datagen.Census(5000, 1)
	srv := New(tbl, core.DefaultOptions())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func TestSchemaEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var dto SchemaDTO
	if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
		t.Fatal(err)
	}
	if dto.Table != "census" || dto.Rows != 5000 || len(dto.Fields) != 5 {
		t.Fatalf("schema = %+v", dto)
	}
}

func TestStatelessExplore(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/api/explore", map[string]string{
		"cql": "EXPLORE census WHERE age BETWEEN 17 AND 90",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var maps []MapDTO
	if err := json.Unmarshal(body["maps"], &maps); err != nil {
		t.Fatal(err)
	}
	if len(maps) == 0 {
		t.Fatal("no maps returned")
	}
	for _, m := range maps {
		if len(m.Regions) == 0 || len(m.Regions) > 8 {
			t.Fatalf("map regions = %d", len(m.Regions))
		}
	}
}

func TestExploreWithOptions(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/api/explore", map[string]string{
		"cql": "EXPLORE census WITH MAPS 1 MERGE product",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d body=%v", resp.StatusCode, body)
	}
	var maps []MapDTO
	if err := json.Unmarshal(body["maps"], &maps); err != nil {
		t.Fatal(err)
	}
	if len(maps) != 1 {
		t.Fatalf("maps = %d, want 1 (MAPS 1)", len(maps))
	}
}

func TestExploreBadCQL(t *testing.T) {
	ts := newTestServer(t)
	cases := []string{
		"SELECT 1",
		"EXPLORE census WHERE ghost = 1",
		"EXPLORE census WITH CUT bogus",
		"EXPLORE wrongtable",
	}
	for _, q := range cases {
		resp, body := postJSON(t, ts.URL+"/api/explore", map[string]string{"cql": q})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%q: status = %d body=%v", q, resp.StatusCode, body)
		}
		if _, ok := body["error"]; !ok {
			t.Errorf("%q: missing error field", q)
		}
	}
}

func TestExploreMalformedBody(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/explore", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestSessionLifecycle(t *testing.T) {
	ts := newTestServer(t)
	// create
	resp, body := postJSON(t, ts.URL+"/api/sessions", map[string]string{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	var id int
	if err := json.Unmarshal(body["id"], &id); err != nil {
		t.Fatal(err)
	}
	base := fmt.Sprintf("%s/api/sessions/%d", ts.URL, id)

	// explore
	resp, body = postJSON(t, base+"/explore", map[string]string{"cql": "EXPLORE census"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore status = %d body=%v", resp.StatusCode, body)
	}
	var nodeID int
	if err := json.Unmarshal(body["id"], &nodeID); err != nil {
		t.Fatal(err)
	}
	if nodeID != 0 {
		t.Fatalf("first node id = %d", nodeID)
	}

	// drill
	resp, body = postJSON(t, base+"/drill", map[string]int{"map": 0, "region": 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drill status = %d body=%v", resp.StatusCode, body)
	}
	var parent int
	if err := json.Unmarshal(body["parent"], &parent); err != nil {
		t.Fatal(err)
	}
	if parent != 0 {
		t.Fatalf("drill parent = %d", parent)
	}

	// current
	hresp, err := http.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var cur NodeDTO
	if err := json.NewDecoder(hresp.Body).Decode(&cur); err != nil {
		t.Fatal(err)
	}
	if cur.ID != 1 {
		t.Fatalf("current = %d", cur.ID)
	}

	// back
	resp, body = postJSON(t, base+"/back", map[string]string{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("back status = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body["id"], &nodeID); err != nil {
		t.Fatal(err)
	}
	if nodeID != 0 {
		t.Fatalf("back node = %d", nodeID)
	}

	// back at root fails
	resp, _ = postJSON(t, base+"/back", map[string]string{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("back at root status = %d", resp.StatusCode)
	}

	// history
	hresp2, err := http.Get(base + "/history")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp2.Body.Close()
	var hist []NodeDTO
	if err := json.NewDecoder(hresp2.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Fatalf("history = %d nodes", len(hist))
	}
}

func TestSessionNotFound(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/api/sessions/99/explore", map[string]string{"cql": "EXPLORE census"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp2, _ := postJSON(t, ts.URL+"/api/sessions/abc/explore", map[string]string{"cql": "EXPLORE census"})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
}

func TestDescribeEndpoint(t *testing.T) {
	ts := newTestServer(t)
	_, body := postJSON(t, ts.URL+"/api/sessions", map[string]string{})
	var id int
	if err := json.Unmarshal(body["id"], &id); err != nil {
		t.Fatal(err)
	}
	base := fmt.Sprintf("%s/api/sessions/%d", ts.URL, id)
	resp, _ := postJSON(t, base+"/explore", map[string]string{"cql": "EXPLORE census"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore status = %d", resp.StatusCode)
	}
	dresp, err := http.Post(base+"/describe", "application/json",
		bytes.NewReader([]byte(`{"map":0,"region":0}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("describe status = %d", dresp.StatusCode)
	}
	var profiles []ProfileDTO
	if err := json.NewDecoder(dresp.Body).Decode(&profiles); err != nil {
		t.Fatal(err)
	}
	if len(profiles) == 0 {
		t.Fatal("no profiles")
	}
	for _, p := range profiles {
		if p.Attr == "" || p.Summary == "" {
			t.Fatalf("incomplete profile %+v", p)
		}
	}
	// out-of-range region
	bresp, _ := postJSON(t, base+"/describe", map[string]int{"map": 0, "region": 999})
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad describe status = %d", bresp.StatusCode)
	}
}

func TestPersonalizedEndpoint(t *testing.T) {
	ts := newTestServer(t)
	_, body := postJSON(t, ts.URL+"/api/sessions", map[string]string{})
	var id int
	if err := json.Unmarshal(body["id"], &id); err != nil {
		t.Fatal(err)
	}
	base := fmt.Sprintf("%s/api/sessions/%d", ts.URL, id)
	if resp, _ := postJSON(t, base+"/explore", map[string]string{"cql": "EXPLORE census"}); resp.StatusCode != http.StatusOK {
		t.Fatal("explore failed")
	}
	// drilling builds interest; then personalized order is served
	if resp, _ := postJSON(t, base+"/drill", map[string]int{"map": 0, "region": 0}); resp.StatusCode != http.StatusOK {
		t.Fatal("drill failed")
	}
	if resp, _ := postJSON(t, base+"/back", map[string]string{}); resp.StatusCode != http.StatusOK {
		t.Fatal("back failed")
	}
	presp, err := http.Get(base + "/personalized")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("personalized status = %d", presp.StatusCode)
	}
	var maps []MapDTO
	if err := json.NewDecoder(presp.Body).Decode(&maps); err != nil {
		t.Fatal(err)
	}
	if len(maps) == 0 {
		t.Fatal("no personalized maps")
	}
}

func TestDrillBeforeExplore(t *testing.T) {
	ts := newTestServer(t)
	_, body := postJSON(t, ts.URL+"/api/sessions", map[string]string{})
	var id int
	if err := json.Unmarshal(body["id"], &id); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJSON(t, fmt.Sprintf("%s/api/sessions/%d/drill", ts.URL, id), map[string]int{"map": 0, "region": 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
