package server

import (
	"io"
	"net/http"
	"strconv"

	"repro/internal/workload"
)

// This file is the server's workload-capture surface: every finished
// query (observeQuery) and every shed request (recordShed) lands in a
// bounded in-memory workload recorder, exported as versioned JSONL by
// GET /api/workload and optionally streamed to disk via atlasd
// -record-workload. Replay it with atlasbench -replay.

// workloadCaptureDepth bounds the in-memory capture: past it entries
// are dropped (counted, and still streamed to a configured sink), so an
// always-on recorder can never grow without bound.
const workloadCaptureDepth = 4096

// RecordWorkloadTo streams the capture through w as JSONL (header
// first, then one line per query as it finishes) in addition to the
// in-memory ring. Call before serving.
func (s *Server) RecordWorkloadTo(w io.Writer) { s.wrec.SetSink(w) }

// WorkloadSnapshot returns the capture so far.
func (s *Server) WorkloadSnapshot() *workload.Workload { return s.wrec.Snapshot() }

// handleWorkload serves GET /api/workload: the captured workload as
// JSONL (the same format -record-workload writes and -replay reads).
func (s *Server) handleWorkload(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if dropped := s.wrec.Dropped(); dropped > 0 {
		w.Header().Set("X-Atlas-Workload-Dropped", strconv.FormatInt(dropped, 10))
	}
	_ = s.wrec.Export(w)
}
