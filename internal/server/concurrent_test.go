package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentExploreSharedCartographer drives the stateless explore
// endpoint from many goroutines at once — every request runs on the
// server's one shared Cartographer. Run with -race; responses must all
// agree with a reference answer.
func TestConcurrentExploreSharedCartographer(t *testing.T) {
	ts := newTestServer(t)
	explore := func(cqlText string) (ResultDTO, error) {
		var dto ResultDTO
		buf, err := json.Marshal(exploreRequest{CQL: cqlText})
		if err != nil {
			return dto, err
		}
		resp, err := http.Post(ts.URL+"/api/explore", "application/json", bytes.NewReader(buf))
		if err != nil {
			return dto, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return dto, fmt.Errorf("status = %d", resp.StatusCode)
		}
		return dto, json.NewDecoder(resp.Body).Decode(&dto)
	}

	statements := []string{
		"EXPLORE census",
		"EXPLORE census WHERE age BETWEEN 20 AND 60",
		"EXPLORE census WHERE sex IN ('Male')",
	}
	refs := make([]ResultDTO, len(statements))
	for i, s := range statements {
		ref, err := explore(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		refs[i] = ref
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, s := range statements {
				got, err := explore(s)
				if err != nil {
					t.Errorf("%q: %v", s, err)
					return
				}
				if got.BaseCount != refs[i].BaseCount || len(got.Maps) != len(refs[i].Maps) {
					t.Errorf("%q: got %d maps over %d rows, want %d maps over %d rows",
						s, len(got.Maps), got.BaseCount, len(refs[i].Maps), refs[i].BaseCount)
					return
				}
				for mi := range got.Maps {
					aj, _ := json.Marshal(got.Maps[mi])
					bj, _ := json.Marshal(refs[i].Maps[mi])
					if !bytes.Equal(aj, bj) {
						t.Errorf("%q map %d differs: %s vs %s", s, mi, aj, bj)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
