package obsv

import (
	"context"
	"errors"
	"fmt"
)

// This file is the query path's cancellation vocabulary. Every layer
// that unwinds on ctx.Done() — engine scan/partition drivers, core
// fan-outs, session base assembly, colstore single-flight loads, the
// fabric client — returns a *CancelledError naming the stage that
// noticed, wrapping the context's cause so errors.Is(err,
// context.Canceled) and errors.Is(err, context.DeadlineExceeded) keep
// working across process layers. The first stage to notice also marks
// the query's ledger, so /api/querylog and EXPLAIN show where a
// cancelled query died.

// CancelledError is the named error a cancelled or deadlined query
// unwinds with. Stage names the layer/work-item that observed
// ctx.Done() (e.g. "engine.scan", "core.cut", "colstore.load").
type CancelledError struct {
	Stage string
	Err   error
}

func (e *CancelledError) Error() string {
	if errors.Is(e.Err, context.DeadlineExceeded) {
		return fmt.Sprintf("%s: query deadline exceeded: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("%s: query cancelled: %v", e.Stage, e.Err)
}

func (e *CancelledError) Unwrap() error { return e.Err }

// CheckCtx polls ctx at a work-item boundary. Live contexts cost one
// atomic-free channel poll; done contexts return a *CancelledError
// naming stage and mark the context's ledger (first marker wins), so
// cancellation observed deep in a scan loop surfaces in the query's
// resource bill.
func CheckCtx(ctx context.Context, stage string) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return Cancelled(ctx, stage)
	default:
		return nil
	}
}

// Cancelled builds the stage's *CancelledError from a done context and
// marks the context's ledger. Callers that already know ctx is done
// (e.g. a select that just fired) use this directly.
func Cancelled(ctx context.Context, stage string) *CancelledError {
	cause := context.Cause(ctx)
	if cause == nil {
		cause = context.Canceled
	}
	if led := LedgerFrom(ctx); led != nil {
		led.MarkCancelled(stage)
	}
	return &CancelledError{Stage: stage, Err: cause}
}

// IsCancellation reports whether err is (or wraps) a context
// cancellation or deadline expiry — ours or the stdlib's.
func IsCancellation(err error) bool {
	return err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// IsDeadline reports whether err is (or wraps) a deadline expiry.
func IsDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}
