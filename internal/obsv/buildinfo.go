package obsv

import (
	"runtime"
	"strconv"
)

// Version is the atlas release version, reported by the
// atlas_build_info gauge and the shard-server stats RPC. Bump it with
// each release line.
const Version = "0.10.0"

// RegisterBuildInfo registers the atlas_build_info gauge: constant 1,
// with the build identity in its labels (the Prometheus build-info
// convention, joinable against any other family). atlVersion is the
// .atl store format version the binary writes (colstore.Version —
// passed in because obsv sits below the storage layers).
func RegisterBuildInfo(r *Registry, atlVersion int) {
	r.GaugeFunc("atlas_build_info", "build metadata; value is always 1",
		map[string]string{
			"version": Version,
			"go":      runtime.Version(),
			"atl":     strconv.Itoa(atlVersion),
		}, func() float64 { return 1 })
}
