package obsv

import (
	"sync/atomic"
	"time"
)

// QueryLogEntry is one finished query as remembered by the log: what
// ran, how long it took, what it cost, and — for slow or failed
// queries — the full span tree for post-hoc debugging.
type QueryLogEntry struct {
	// Seq is the entry's position in the log's lifetime sequence
	// (monotonically increasing; newest entries have the highest Seq).
	Seq uint64 `json:"seq"`
	// Time is when the query finished.
	Time time.Time `json:"time"`
	// RequestID correlates with X-Atlas-Request-Id and slow-log lines.
	RequestID string `json:"rid,omitempty"`
	// Op names the operation: "explore", "session-explore", "drill".
	Op string `json:"op"`
	// Input is the query text (or a drill-down descriptor).
	Input string `json:"input"`
	// DurNs is the wall-clock duration.
	DurNs int64 `json:"durNs"`
	// Err is the error message of a failed query, "" on success.
	Err string `json:"error,omitempty"`
	// Outcome classifies how the query ended: "" (ok) or "error" for
	// ordinary completions, "cancelled" for caller-abandoned queries,
	// "deadline" for wall-clock deadline expiries, "shed" for requests
	// the admission gate refused.
	Outcome string `json:"outcome,omitempty"`
	// Slow marks entries at or over the server's slow-query threshold.
	Slow bool `json:"slow,omitempty"`
	// Ledger is the query's resource bill.
	Ledger *LedgerSnapshot `json:"ledger,omitempty"`
	// Profile is the query's span tree, retained only for slow or
	// failed entries (fast successes drop it to bound memory).
	Profile *SpanJSON `json:"profile,omitempty"`
}

// QueryLog is a bounded, lock-free ring of finished queries. Writers
// claim a slot with one atomic increment and publish the entry with one
// atomic pointer store; readers snapshot without blocking writers.
// Entries are immutable once published.
type QueryLog struct {
	seq   atomic.Uint64
	slots []atomic.Pointer[QueryLogEntry]
}

// DefaultQueryLogDepth is the ring capacity servers use.
const DefaultQueryLogDepth = 256

// NewQueryLog builds a ring remembering the last capacity entries
// (minimum 1).
func NewQueryLog(capacity int) *QueryLog {
	if capacity < 1 {
		capacity = 1
	}
	return &QueryLog{slots: make([]atomic.Pointer[QueryLogEntry], capacity)}
}

// Add publishes one entry, overwriting the oldest once the ring is
// full. The entry's Seq is assigned here. Safe for concurrent use.
func (q *QueryLog) Add(e *QueryLogEntry) {
	if q == nil || e == nil {
		return
	}
	e.Seq = q.seq.Add(1) - 1
	q.slots[e.Seq%uint64(len(q.slots))].Store(e)
}

// Depth returns how many entries the ring currently holds.
func (q *QueryLog) Depth() int {
	if q == nil {
		return 0
	}
	n := q.seq.Load()
	if n > uint64(len(q.slots)) {
		return len(q.slots)
	}
	return int(n)
}

// Total returns the lifetime number of entries ever logged.
func (q *QueryLog) Total() uint64 {
	if q == nil {
		return 0
	}
	return q.seq.Load()
}

// Entries snapshots the ring, newest first. Entries overwritten while
// snapshotting may appear out of order; the per-entry Seq disambiguates
// (and the result is re-sorted by it, descending).
func (q *QueryLog) Entries() []*QueryLogEntry {
	if q == nil {
		return nil
	}
	hi := q.seq.Load()
	n := uint64(len(q.slots))
	lo := uint64(0)
	if hi > n {
		lo = hi - n
	}
	out := make([]*QueryLogEntry, 0, hi-lo)
	for s := hi; s > lo; s-- {
		e := q.slots[(s-1)%n].Load()
		if e != nil {
			out = append(out, e)
		}
	}
	// A racing writer can overwrite a slot between the seq read and the
	// slot load; restore newest-first order and drop duplicates.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq < out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	dedup := out[:0]
	var prev *QueryLogEntry
	for _, e := range out {
		if prev == nil || e.Seq != prev.Seq {
			dedup = append(dedup, e)
		}
		prev = e
	}
	return dedup
}
