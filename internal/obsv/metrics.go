package obsv

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a process-level metric set exported in Prometheus text
// exposition format (version 0.0.4). It holds owned metrics (Counter,
// Gauge, Histogram) and collector functions sampling counters that
// already exist elsewhere (engine scan stats, store I/O, fabric
// traffic). No dependencies, atomics throughout.
type Registry struct {
	mu       sync.Mutex
	entries  []*metricEntry
	index    map[string]*metricEntry // name + rendered labels
	onScrape []func()
}

type metricEntry struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels string // rendered `k="v",...` (no braces), "" if none
	value  func() float64
	hist   *Histogram
	owned  any // the *Counter/*Gauge/*Histogram handle, for idempotent re-registration
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metricEntry)}
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket latency/size distribution. Buckets are
// upper bounds in ascending order; observations above the last bound
// land in the implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // one per bound, non-cumulative
	inf     atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// DefLatencyBuckets are the default latency bounds in seconds: 1ms to
// 10s, roughly 2.5× apart.
func DefLatencyBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.buckets[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0..1) from the bucket counts by
// linear interpolation within the containing bucket — the p50/p99
// surface of /api/stats.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	lo := 0.0
	for i, b := range h.bounds {
		n := float64(h.buckets[i].Load())
		if seen+n >= rank && n > 0 {
			frac := (rank - seen) / n
			return lo + frac*(b-lo)
		}
		seen += n
		lo = b
	}
	return lo // +Inf bucket: report the last finite bound
}

// NewCounter registers and returns a counter. Registering the same
// (name, labels) twice returns the original.
func (r *Registry) NewCounter(name, help string, labels map[string]string) *Counter {
	c := &Counter{}
	if prior, ok := r.register("counter", name, help, labels, func() float64 { return float64(c.Value()) }, nil, c).(*Counter); ok {
		return prior
	}
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string, labels map[string]string) *Gauge {
	g := &Gauge{}
	if prior, ok := r.register("gauge", name, help, labels, func() float64 { return float64(g.Value()) }, nil, g).(*Gauge); ok {
		return prior
	}
	return g
}

// NewHistogram registers and returns a histogram with the given upper
// bounds (ascending; nil uses DefLatencyBuckets).
func (r *Registry) NewHistogram(name, help string, labels map[string]string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets()
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds))}
	if prior, ok := r.register("histogram", name, help, labels, nil, h, h).(*Histogram); ok {
		return prior
	}
	return h
}

// CounterFunc registers a counter whose value is sampled from fn at
// scrape time — the adapter for counters owned by other layers.
func (r *Registry) CounterFunc(name, help string, labels map[string]string, fn func() float64) {
	r.register("counter", name, help, labels, fn, nil, nil)
}

// GaugeFunc registers a sampled gauge.
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {
	r.register("gauge", name, help, labels, fn, nil, nil)
}

// register adds an entry, returning the prior owned metric handle when
// the same (name, labels) series is already present.
func (r *Registry) register(typ, name, help string, labels map[string]string, value func() float64, hist *Histogram, owned any) any {
	ls := renderLabels(labels)
	key := name + "{" + ls + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if prior, ok := r.index[key]; ok {
		return prior.owned
	}
	e := &metricEntry{name: name, help: help, typ: typ, labels: ls, value: value, hist: hist, owned: owned}
	r.entries = append(r.entries, e)
	r.index[key] = e
	return nil
}

// OnScrape registers a hook run at the start of every WritePrometheus
// — the seam for samplers that refresh a shared snapshot (e.g. one
// ReadMemStats feeding several Go runtime families) or feed histograms
// from counters that only move between scrapes.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.onScrape = append(r.onScrape, fn)
	r.mu.Unlock()
}

// NumMetrics returns the number of registered series.
func (r *Registry) NumMetrics() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + `="` + escapeLabel(labels[k]) + `"`
	}
	return strings.Join(parts, ",")
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders every metric in text exposition format,
// grouped and sorted by name (HELP and TYPE emitted once per name).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := append([]*metricEntry(nil), r.entries...)
	hooks := append([]func(){}, r.onScrape...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].labels < entries[j].labels
	})
	var prev string
	for _, e := range entries {
		if e.name != prev {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", e.name, e.help, e.name, e.typ); err != nil {
				return err
			}
			prev = e.name
		}
		if e.hist != nil {
			if err := writeHistogram(w, e); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", series(e.name, e.labels), formatValue(e.value())); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, e *metricEntry) error {
	h := e.hist
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		ls := joinLabels(e.labels, `le="`+formatValue(b)+`"`)
		if _, err := fmt.Fprintf(w, "%s %d\n", series(e.name+"_bucket", ls), cum); err != nil {
			return err
		}
	}
	cum += h.inf.Load()
	if _, err := fmt.Fprintf(w, "%s %d\n", series(e.name+"_bucket", joinLabels(e.labels, `le="+Inf"`)), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", series(e.name+"_sum", e.labels), formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", series(e.name+"_count", e.labels), h.count.Load())
	return err
}

func series(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
