package obsv

import "encoding/json"

// Chrome trace-event export: a finished span tree rendered as the JSON
// object format Perfetto (and chrome://tracing) load directly —
// {"traceEvents": [...]} of "X" complete events with microsecond
// timestamps. The coordinator's spans form process 1; every grafted
// remote subtree (a shard server's spans) becomes its own process, so
// a coordinator + shard-server trace opens as one timeline with one
// track group per machine.

type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// perfettoLanes assigns spans of one process to non-overlapping lanes
// (thread IDs): each span takes the lowest lane that is free at its
// start time. Parents overlap their children, so a child always lands
// on a deeper lane — a waterfall layout every trace viewer renders
// without nesting heuristics.
type perfettoLanes struct {
	endNs []int64 // per lane, the end of the last span placed there
}

func (p *perfettoLanes) place(startNs, durNs int64) int {
	for i, end := range p.endNs {
		if end <= startNs {
			p.endNs[i] = startNs + durNs
			return i
		}
	}
	p.endNs = append(p.endNs, startNs+durNs)
	return len(p.endNs) - 1
}

// PerfettoTrace renders a span tree (Trace.Tree output) as Chrome
// trace-event JSON. The result is a complete, self-contained file —
// write it to disk and open it in https://ui.perfetto.dev.
func PerfettoTrace(root *SpanJSON) ([]byte, error) {
	f := perfettoFile{TraceEvents: []perfettoEvent{}, DisplayTimeUnit: "ms"}
	if root != nil {
		names := map[int]string{1: "coordinator"}
		lanes := map[int]*perfettoLanes{}
		nextPid := 2
		var walk func(sp *SpanJSON, pid int)
		walk = func(sp *SpanJSON, pid int) {
			if sp.Remote {
				// A grafted shard-server subtree: its own process.
				pid = nextPid
				nextPid++
				names[pid] = sp.Name
			}
			ln := lanes[pid]
			if ln == nil {
				ln = &perfettoLanes{}
				lanes[pid] = ln
			}
			ev := perfettoEvent{
				Name: sp.Name,
				Ph:   "X",
				Ts:   float64(sp.StartNs) / 1e3,
				Dur:  float64(sp.DurNs) / 1e3,
				Pid:  pid,
				Tid:  ln.place(sp.StartNs, sp.DurNs),
			}
			if len(sp.Attrs) > 0 {
				ev.Args = sp.Attrs
			}
			f.TraceEvents = append(f.TraceEvents, ev)
			for _, c := range sp.Children {
				walk(c, pid)
			}
		}
		walk(root, 1)
		for pid := 1; pid < nextPid; pid++ {
			f.TraceEvents = append(f.TraceEvents, perfettoEvent{
				Name: "process_name",
				Ph:   "M",
				Pid:  pid,
				Args: map[string]any{"name": names[pid]},
			})
		}
	}
	return json.Marshal(f)
}
