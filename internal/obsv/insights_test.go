package obsv

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// ---- Histogram.Quantile edge cases ----

func TestHistogramQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("empty_seconds", "e", nil, []float64{0.1, 0.2})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, v)
		}
	}
	var nilH *Histogram
	if v := nilH.Quantile(0.5); v != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", v)
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("single_seconds", "s", nil, []float64{1.0})
	h.Observe(0.5)
	if v := h.Quantile(0.5); v < 0 || v > 1.0 {
		t.Errorf("single-bucket p50 %v outside [0, 1]", v)
	}
	if v := h.Quantile(1.0); v > 1.0 {
		t.Errorf("single-bucket p100 %v above the only bound", v)
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{0.1, 0.2, 0.4}
	h := r.NewHistogram("overflow_seconds", "o", nil, bounds)
	for i := 0; i < 10; i++ {
		h.Observe(99) // all land in the implicit +Inf bucket
	}
	// The estimate cannot invent values above the last finite bound.
	if v := h.Quantile(0.99); v != bounds[len(bounds)-1] {
		t.Errorf("overflow-only p99 = %v, want last finite bound %v", v, bounds[len(bounds)-1])
	}
	// Mixed: half in a finite bucket, half overflowed — p25 stays finite.
	for i := 0; i < 10; i++ {
		h.Observe(0.15)
	}
	if v := h.Quantile(0.25); v < 0.1 || v > 0.2 {
		t.Errorf("mixed p25 = %v, want within (0.1, 0.2]", v)
	}
}

// ---- query log ring ----

func TestQueryLogNewestFirst(t *testing.T) {
	q := NewQueryLog(4)
	for i := 0; i < 6; i++ { // wraps: only the last 4 survive
		q.Add(&QueryLogEntry{Op: "explore", Input: fmt.Sprintf("q%d", i)})
	}
	if q.Total() != 6 {
		t.Fatalf("Total = %d, want 6", q.Total())
	}
	if q.Depth() != 4 {
		t.Fatalf("Depth = %d, want 4", q.Depth())
	}
	got := q.Entries()
	if len(got) != 4 {
		t.Fatalf("Entries len = %d, want 4", len(got))
	}
	for i, e := range got {
		want := fmt.Sprintf("q%d", 5-i)
		if e.Input != want {
			t.Errorf("entry %d = %q, want %q (newest first)", i, e.Input, want)
		}
	}
}

func TestQueryLogConcurrent(t *testing.T) {
	const writers, perWriter = 8, 200
	q := NewQueryLog(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers snapshot while writers churn the ring.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				es := q.Entries()
				for i := 1; i < len(es); i++ {
					if es[i-1].Seq <= es[i].Seq {
						t.Errorf("entries out of order: seq %d then %d", es[i-1].Seq, es[i].Seq)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				q.Add(&QueryLogEntry{Op: "explore", Input: fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}
	for q.Total() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if q.Total() != writers*perWriter {
		t.Fatalf("Total = %d, want %d", q.Total(), writers*perWriter)
	}
	if q.Depth() != 64 {
		t.Fatalf("Depth = %d, want 64", q.Depth())
	}
}

// ---- ledger ----

func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	l.ChunkScanned()
	l.ChunkPruned()
	l.ChunkFull()
	l.ChunkFetch(true)
	l.ChunkFetch(false)
	l.ReadBytes(10)
	l.StoreChunkDecoded()
	l.RPC()
	l.WireBytes(10)
	l.AddPhase("p", 1, 1)
	l.StartPhase("p")()
	l.Finish()
	l.Add(LedgerSnapshot{BytesRead: 5})
	if s := l.Snapshot(); s.BytesRead != 0 {
		t.Fatalf("nil ledger snapshot moved: %+v", s)
	}
	if LedgerFrom(nil) != nil {
		t.Fatal("LedgerFrom(nil) != nil")
	}
	if LedgerFrom(context.Background()) != nil {
		t.Fatal("unledgered context returned a ledger")
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	l := NewLedger()
	ctx := WithLedger(context.Background(), l)
	got := LedgerFrom(ctx)
	if got != l {
		t.Fatal("context did not carry the ledger")
	}
	// Values survive WithoutCancel — the async-prefetch path.
	if LedgerFrom(context.WithoutCancel(ctx)) != l {
		t.Fatal("ledger lost across WithoutCancel")
	}
	got.ChunkScanned()
	got.ChunkPruned()
	got.ChunkFetch(false)
	got.ChunkFetch(true)
	got.ReadBytes(128)
	got.StoreChunkDecoded()
	got.RPC()
	got.WireBytes(64)
	end := got.StartPhase("cut")
	end()
	got.Finish()
	s := l.Snapshot()
	if s.ChunksScanned != 1 || s.ChunksPruned != 1 || s.ChunksDecoded != 1 || s.ChunkCacheHits != 1 {
		t.Fatalf("scan plane: %+v", s)
	}
	if s.BytesRead != 128 || s.StoreChunksDecoded != 1 || s.RPCs != 1 || s.BytesWire != 64 {
		t.Fatalf("store/fabric plane: %+v", s)
	}
	if len(s.Phases) != 1 || s.Phases[0].Name != "cut" || s.Phases[0].WallNs < 0 {
		t.Fatalf("phases: %+v", s.Phases)
	}
	var totals Ledger
	totals.Add(s)
	totals.Add(s)
	if ts := totals.Snapshot(); ts.BytesRead != 256 || ts.ChunksScanned != 2 {
		t.Fatalf("totals: %+v", ts)
	}
}

// ---- Perfetto export ----

func TestPerfettoTrace(t *testing.T) {
	tr, root := NewTrace("explore")
	base := root.NewChild("base")
	rpc := base.NewChild("rpc chunk")
	// A shard server's subtree grafted under the RPC that triggered it.
	rtr, rroot := NewTrace("shard: chunk")
	rroot.NewChild("decode").End()
	rroot.End()
	rpc.Graft(rtr.Tree())
	rpc.End()
	base.End()
	root.End()

	b, err := PerfettoTrace(tr.Tree())
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatalf("export is not valid trace-event JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	pids := map[int]bool{}
	var sawRemote, sawMeta bool
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "X":
			pids[ev.Pid] = true
			if ev.Pid != 1 {
				sawRemote = true
			}
		case "M":
			sawMeta = true
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if !pids[1] {
		t.Error("no coordinator (pid 1) events")
	}
	if !sawRemote {
		t.Error("grafted remote subtree did not get its own process")
	}
	if !sawMeta {
		t.Error("no process_name metadata events")
	}
	if PerfettoMustParse(t, b) == 0 {
		t.Error("no events")
	}
}

// PerfettoMustParse re-parses an export and returns the event count —
// shared with the server tests asserting the HTTP surface.
func PerfettoMustParse(t *testing.T, b []byte) int {
	t.Helper()
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatalf("invalid trace-event JSON: %v", err)
	}
	return len(f.TraceEvents)
}

func TestPerfettoTraceNil(t *testing.T) {
	b, err := PerfettoTrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "traceEvents") {
		t.Fatalf("nil trace export: %s", b)
	}
}

// ---- Go runtime metric families ----

func TestGoRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterGoRuntime(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, fam := range []string{
		"go_goroutines", "go_gomaxprocs", "go_heap_alloc_bytes",
		"go_gc_cycles_total", "go_alloc_bytes_total", "go_gc_pause_seconds_bucket",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("scrape missing %s", fam)
		}
	}
}
