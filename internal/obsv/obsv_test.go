package obsv

import (
	"context"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "noop")
	if sp != nil {
		t.Fatalf("untraced context produced a span")
	}
	if SpanFrom(ctx) != nil {
		t.Fatalf("untraced context carries a span")
	}
	// Every method must be a no-op on nil.
	sp.SetAttr("k", 1)
	sp.End()
	sp.Graft(&SpanJSON{Name: "x"})
	if got := sp.NewChild("c"); got != nil {
		t.Fatalf("nil span spawned a child")
	}
	if sp.TraceHeaderValue() != "" {
		t.Fatalf("nil span has a trace header")
	}
}

func TestSpanTreeWellFormed(t *testing.T) {
	tr, root := NewTrace("explore")
	ctx := WithSpan(context.Background(), root)
	ctx, phase := StartSpan(ctx, "cut")
	_, leaf := StartSpan(ctx, "cut age")
	time.Sleep(time.Millisecond)
	leaf.SetAttr("attr", "age")
	leaf.End()
	phase.End()
	root.End()

	tree := tr.Tree()
	if tree.Name != "explore" || len(tree.Children) != 1 || tree.Children[0].Name != "cut" {
		t.Fatalf("unexpected tree shape: %+v", tree)
	}
	assertWellFormed(t, tree)
	if got := tree.Children[0].Children[0].Attrs["attr"]; got != "age" {
		t.Fatalf("attr lost: %v", got)
	}
}

// assertWellFormed checks the satellite-3 invariants: positive
// durations, parents covering children. Remote (grafted) subtrees are
// rebased at graft time, so the same containment must hold.
func assertWellFormed(t *testing.T, sp *SpanJSON) {
	t.Helper()
	if sp.DurNs <= 0 {
		t.Fatalf("span %q has non-positive duration %d", sp.Name, sp.DurNs)
	}
	if sp.StartNs < 0 {
		t.Fatalf("span %q starts before the trace anchor", sp.Name)
	}
	for _, c := range sp.Children {
		if c.StartNs < sp.StartNs || c.StartNs+c.DurNs > sp.StartNs+sp.DurNs {
			t.Fatalf("child %q [%d,%d] escapes parent %q [%d,%d]",
				c.Name, c.StartNs, c.StartNs+c.DurNs, sp.Name, sp.StartNs, sp.StartNs+sp.DurNs)
		}
		assertWellFormed(t, c)
	}
}

func TestZeroDurationClamped(t *testing.T) {
	tr, root := NewTrace("r")
	c := root.NewChild("instant")
	c.End() // likely sub-nanosecond
	root.End()
	tree := tr.Tree()
	assertWellFormed(t, tree)
}

func TestGraftContainment(t *testing.T) {
	tr, root := NewTrace("r")
	rpc := root.NewChild("rpc values")
	time.Sleep(2 * time.Millisecond)
	// A remote subtree with server-local offsets.
	remote := &SpanJSON{
		Name: "shard values", StartNs: 5_000_000, DurNs: 1_000_000,
		Children: []*SpanJSON{{Name: "statcompute", StartNs: 5_100_000, DurNs: 500_000}},
	}
	rpc.Graft(remote)
	rpc.End()
	root.End()
	tree := tr.Tree()
	assertWellFormed(t, tree)
	g := tree.Children[0].Children[0]
	if !g.Remote || g.Name != "shard values" {
		t.Fatalf("graft lost: %+v", g)
	}
	if len(g.Children) != 1 || g.Children[0].StartNs-g.StartNs != 100_000 {
		t.Fatalf("graft did not preserve relative offsets: %+v", g.Children)
	}
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	tr, root := NewTrace("r")
	h := root.TraceHeaderValue()
	id, parent, ok := ParseTraceHeader(h)
	if !ok || id != tr.ID() || parent != 1 {
		t.Fatalf("round trip failed: %q -> (%q, %d, %v)", h, id, parent, ok)
	}
	for _, bad := range []string{"", "noslash", "/5", "t-x/"} {
		if _, _, ok := ParseTraceHeader(bad); ok {
			t.Fatalf("accepted bad header %q", bad)
		}
	}
}

func TestSpanTreeCodec(t *testing.T) {
	in := &SpanJSON{Name: "a", StartNs: 1, DurNs: 2, Attrs: map[string]any{"k": "v"},
		Children: []*SpanJSON{{Name: "b", StartNs: 1, DurNs: 1}}}
	enc, err := EncodeSpanTree(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSpanTree(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "a" || len(out.Children) != 1 || out.Children[0].Name != "b" {
		t.Fatalf("round trip mangled tree: %+v", out)
	}
	if _, err := DecodeSpanTree("!!!"); err == nil {
		t.Fatalf("decoded garbage")
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b || !strings.HasPrefix(a, "q-") {
		t.Fatalf("bad request ids %q %q", a, b)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestIDFrom(ctx); got != a {
		t.Fatalf("rid lost: %q", got)
	}
	if RequestIDFrom(context.Background()) != "" {
		t.Fatalf("phantom rid")
	}
}

// Prometheus text-format line shapes (exposition format 0.0.4).
var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$`)
)

// checkPrometheusText asserts every line of a text exposition parses,
// and returns the sample count. Shared with the server-side tests.
func checkPrometheusText(t *testing.T, text string) int {
	t.Helper()
	samples := 0
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case helpRe.MatchString(line), typeRe.MatchString(line):
		case sampleRe.MatchString(line):
			samples++
			val := line[strings.LastIndexByte(line, ' ')+1:]
			if _, err := strconv.ParseFloat(val, 64); err != nil && val != "+Inf" && val != "-Inf" && val != "NaN" {
				t.Fatalf("unparseable sample value in %q", line)
			}
		default:
			t.Fatalf("line does not parse as Prometheus text format: %q", line)
		}
	}
	return samples
}

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("atlas_test_total", "test counter", nil)
	c.Add(3)
	g := r.NewGauge("atlas_test_gauge", "test gauge", map[string]string{"layer": "engine"})
	g.Set(-2)
	r.CounterFunc("atlas_test_fn_total", "sampled", nil, func() float64 { return 7 })
	h := r.NewHistogram("atlas_test_seconds", "latency", nil, []float64{0.01, 0.1, 1})
	h.Observe(0.004)
	h.Observe(0.05)
	h.Observe(99)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := checkPrometheusText(t, text)
	if samples < 9 { // 3 scalars + 4 buckets + sum + count
		t.Fatalf("only %d samples in:\n%s", samples, text)
	}
	for _, want := range []string{
		"atlas_test_total 3",
		`atlas_test_gauge{layer="engine"} -2`,
		"atlas_test_fn_total 7",
		`atlas_test_seconds_bucket{le="+Inf"} 3`,
		"atlas_test_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
	// Buckets must be cumulative: le=0.1 holds both small observations.
	if !strings.Contains(text, `atlas_test_seconds_bucket{le="0.1"} 2`) {
		t.Fatalf("buckets not cumulative:\n%s", text)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("dup_total", "d", nil)
	a.Inc()
	b := r.NewCounter("dup_total", "d", nil)
	if a != b {
		t.Fatalf("re-registration returned a new counter")
	}
	if r.NumMetrics() != 1 {
		t.Fatalf("duplicate series registered")
	}
	h1 := r.NewHistogram("dup_seconds", "d", nil, nil)
	h2 := r.NewHistogram("dup_seconds", "d", nil, nil)
	if h1 != h2 {
		t.Fatalf("re-registration returned a new histogram")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q_seconds", "q", nil, []float64{0.1, 0.2, 0.4, 0.8})
	for i := 0; i < 100; i++ {
		h.Observe(0.15) // all in the (0.1, 0.2] bucket
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.1 || p50 > 0.2 {
		t.Fatalf("p50 %v outside containing bucket", p50)
	}
	if h.Quantile(0.99) > 0.2 {
		t.Fatalf("p99 escaped the only occupied bucket")
	}
}

func TestConcurrentSpansAndMetrics(t *testing.T) {
	tr, root := NewTrace("r")
	reg := NewRegistry()
	c := reg.NewCounter("conc_total", "c", nil)
	h := reg.NewHistogram("conc_seconds", "c", nil, nil)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer close2(done)
			sp := root.NewChild("worker")
			sp.SetAttr("i", i)
			c.Inc()
			h.Observe(0.001)
			sp.End()
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	root.End()
	assertWellFormed(t, tr.Tree())
	if c.Value() != 8 || h.Count() != 8 {
		t.Fatalf("lost updates: %d %d", c.Value(), h.Count())
	}
}

func close2(ch chan struct{}) { ch <- struct{}{} }
