package obsv

import (
	"runtime"
	"sync"
)

// RegisterGoRuntime adds the Go runtime's own families to a registry:
// goroutine and GOMAXPROCS gauges, heap residency, GC cycle count and a
// GC pause histogram. Memory statistics are sampled once per scrape
// (via the registry's OnScrape hook) and shared by every family, so a
// scrape costs one runtime.ReadMemStats regardless of family count.
func RegisterGoRuntime(r *Registry) {
	rt := &goRuntimeSampler{
		pauses: r.NewHistogram("go_gc_pause_seconds", "stop-the-world GC pause durations",
			nil, []float64{1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 0.1}),
	}
	r.OnScrape(rt.sample)
	r.GaugeFunc("go_goroutines", "number of live goroutines", nil, func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("go_gomaxprocs", "GOMAXPROCS", nil, func() float64 {
		return float64(runtime.GOMAXPROCS(0))
	})
	r.GaugeFunc("go_heap_alloc_bytes", "bytes of allocated heap objects", nil, func() float64 {
		return float64(rt.get().HeapAlloc)
	})
	r.GaugeFunc("go_heap_sys_bytes", "bytes of heap obtained from the OS", nil, func() float64 {
		return float64(rt.get().HeapSys)
	})
	r.GaugeFunc("go_heap_objects", "number of allocated heap objects", nil, func() float64 {
		return float64(rt.get().HeapObjects)
	})
	r.CounterFunc("go_gc_cycles_total", "completed GC cycles", nil, func() float64 {
		return float64(rt.get().NumGC)
	})
	r.CounterFunc("go_alloc_bytes_total", "cumulative bytes allocated on the heap", nil, func() float64 {
		return float64(rt.get().TotalAlloc)
	})
}

// goRuntimeSampler caches one MemStats per scrape and feeds new GC
// pauses (since the previous scrape) into the pause histogram.
type goRuntimeSampler struct {
	mu        sync.Mutex
	ms        runtime.MemStats
	lastNumGC uint32
	pauses    *Histogram
}

func (g *goRuntimeSampler) sample() {
	g.mu.Lock()
	defer g.mu.Unlock()
	runtime.ReadMemStats(&g.ms)
	// PauseNs is a 256-entry ring indexed by GC cycle; replay the cycles
	// completed since the previous scrape.
	n := g.ms.NumGC
	last := g.lastNumGC
	if n > last {
		if n-last > uint32(len(g.ms.PauseNs)) {
			last = n - uint32(len(g.ms.PauseNs))
		}
		for c := last; c < n; c++ {
			g.pauses.Observe(float64(g.ms.PauseNs[c%uint32(len(g.ms.PauseNs))]) / 1e9)
		}
		g.lastNumGC = n
	}
}

func (g *goRuntimeSampler) get() runtime.MemStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ms
}
