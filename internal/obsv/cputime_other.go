//go:build !unix

package obsv

// processCPUNs reports 0 on platforms without rusage accounting; CPU
// fields of the ledger stay zero there.
func processCPUNs() int64 { return 0 }
