package obsv

import (
	"context"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Ledger is the per-query resource bill: every counter the layers below
// already keep (engine scan verdicts, store bytes/decodes, fabric RPCs)
// is additionally charged to the context's Ledger at the same code
// sites, so one Explore or drill-down gets an exact, query-scoped
// account instead of store-lifetime aggregates.
//
// A nil *Ledger is the disabled ledger — every method is a no-op — so
// unledgered paths pay one context lookup and a nil check, mirroring
// the nil-*Span discipline of this package.
//
// Two planes are kept deliberately distinct:
//
//   - the scan plane (ChunksScanned/Pruned/Full/Decoded/CacheHits)
//     mirrors engine.ScanStats: it bills exactly where a scan's
//     ScanOptions.Stats bills, so the ledger delta of one query equals
//     the ScanStats delta the same query produced;
//   - the store plane (BytesRead/StoreChunksDecoded) mirrors
//     colstore.IOStats (and, for remote shards, the client's per-shard
//     I/O counters): it bills inside the chunk loaders themselves, so
//     it also covers fetches the scan plane never sees (stat
//     extraction, screening, merge re-cuts).
type Ledger struct {
	// scan plane — mirrors engine.ScanStats.
	chunksScanned  atomic.Int64
	chunksPruned   atomic.Int64
	chunksFull     atomic.Int64
	chunksDecoded  atomic.Int64
	chunkCacheHits atomic.Int64

	// store plane — mirrors colstore.IOStats / remote client I/O.
	bytesRead          atomic.Int64
	storeChunksDecoded atomic.Int64

	// fabric plane — mirrors the remote opener's attempt accounting.
	rpcs      atomic.Int64
	bytesWire atomic.Int64

	// begin/Finish bookends for process-level costs (best effort:
	// process-wide counters, so concurrent queries cross-bill).
	startCPUNs    int64
	startAllocB   uint64
	cpuNs         atomic.Int64
	allocBytes    atomic.Int64
	finalizedOnce sync.Once

	mu     sync.Mutex
	phases []PhaseCost

	// cancelledAt names the first stage that observed cancellation
	// (empty for queries that ran to completion).
	cancelledAt atomic.Pointer[string]
}

// PhaseCost is the wall-clock (and best-effort CPU) time one pipeline
// phase spent, as recorded by the Cartographer's phase hooks.
type PhaseCost struct {
	Name   string `json:"name"`
	WallNs int64  `json:"wallNs"`
	CPUNs  int64  `json:"cpuNs,omitempty"`
}

// NewLedger opens a ledger and captures the process CPU/allocation
// baselines for Finish.
func NewLedger() *Ledger {
	l := &Ledger{}
	l.startCPUNs = processCPUNs()
	l.startAllocB = totalAllocBytes()
	return l
}

// --- scan plane ---

// ChunkScanned bills one (predicate, chunk) pair whose rows were tested.
func (l *Ledger) ChunkScanned() {
	if l != nil {
		l.chunksScanned.Add(1)
	}
}

// ChunkPruned bills one zone-map prune verdict.
func (l *Ledger) ChunkPruned() {
	if l != nil {
		l.chunksPruned.Add(1)
	}
}

// ChunkFull bills one zone-map full-match verdict.
func (l *Ledger) ChunkFull() {
	if l != nil {
		l.chunksFull.Add(1)
	}
}

// ChunkFetch bills one lazy chunk fetch seen by the scan: a decode on
// miss, a cache hit otherwise.
func (l *Ledger) ChunkFetch(hit bool) {
	if l == nil {
		return
	}
	if hit {
		l.chunkCacheHits.Add(1)
	} else {
		l.chunksDecoded.Add(1)
	}
}

// --- store plane ---

// ReadBytes bills n bytes read from a segment file or received over the
// chunk plane.
func (l *Ledger) ReadBytes(n int64) {
	if l != nil {
		l.bytesRead.Add(n)
	}
}

// StoreChunkDecoded bills one chunk payload decoded by a store loader.
func (l *Ledger) StoreChunkDecoded() {
	if l != nil {
		l.storeChunksDecoded.Add(1)
	}
}

// --- fabric plane ---

// RPC bills one remote shard RPC issued on the query's behalf.
func (l *Ledger) RPC() {
	if l != nil {
		l.rpcs.Add(1)
	}
}

// WireBytes bills n response-body bytes received over the fabric.
func (l *Ledger) WireBytes(n int64) {
	if l != nil {
		l.bytesWire.Add(n)
	}
}

// MarkCancelled records the first stage that observed the query's
// cancellation; later marks (deeper layers unwinding the same query)
// are ignored so the snapshot names where the unwind began.
func (l *Ledger) MarkCancelled(stage string) {
	if l == nil || stage == "" {
		return
	}
	l.cancelledAt.CompareAndSwap(nil, &stage)
}

// CancelledAt returns the stage that first observed cancellation, or
// "" for uncancelled queries.
func (l *Ledger) CancelledAt() string {
	if l == nil {
		return ""
	}
	if p := l.cancelledAt.Load(); p != nil {
		return *p
	}
	return ""
}

// --- process costs and phases ---

// AddPhase records one pipeline phase's wall (and CPU) time.
func (l *Ledger) AddPhase(name string, wallNs, cpuNs int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.phases = append(l.phases, PhaseCost{Name: name, WallNs: wallNs, CPUNs: cpuNs})
	l.mu.Unlock()
}

// StartPhase opens one phase bookend: the returned function records
// the phase's wall-clock (and best-effort process CPU) time under name.
// Nil ledgers return a no-op, so callers bookend unconditionally.
func (l *Ledger) StartPhase(name string) func() {
	if l == nil {
		return func() {}
	}
	wall := time.Now()
	cpu := processCPUNs()
	return func() {
		l.AddPhase(name, time.Since(wall).Nanoseconds(), processCPUNs()-cpu)
	}
}

// Finish closes the CPU/allocation bookends opened by NewLedger. Safe
// to call more than once; only the first call records.
func (l *Ledger) Finish() {
	if l == nil {
		return
	}
	l.finalizedOnce.Do(func() {
		if d := processCPUNs() - l.startCPUNs; d > 0 {
			l.cpuNs.Store(d)
		}
		if d := totalAllocBytes() - l.startAllocB; d < 1<<62 { // guard underflow
			l.allocBytes.Store(int64(d))
		}
	})
}

// LedgerSnapshot is a plain-value copy of a Ledger for DTOs and the
// query log.
type LedgerSnapshot struct {
	ChunksScanned      int64       `json:"chunksScanned"`
	ChunksPruned       int64       `json:"chunksPruned"`
	ChunksFull         int64       `json:"chunksFull"`
	ChunksDecoded      int64       `json:"chunksDecoded"`
	ChunkCacheHits     int64       `json:"chunkCacheHits"`
	BytesRead          int64       `json:"bytesRead"`
	StoreChunksDecoded int64       `json:"storeChunksDecoded"`
	RPCs               int64       `json:"rpcs"`
	BytesWire          int64       `json:"bytesWire"`
	CPUNs              int64       `json:"cpuNs,omitempty"`
	AllocBytes         int64       `json:"allocBytes,omitempty"`
	CancelledAt        string      `json:"cancelledAt,omitempty"`
	Phases             []PhaseCost `json:"phases,omitempty"`
}

// Snapshot copies the ledger. Phases come back sorted by name so the
// output is deterministic regardless of phase scheduling.
func (l *Ledger) Snapshot() LedgerSnapshot {
	if l == nil {
		return LedgerSnapshot{}
	}
	l.mu.Lock()
	phases := append([]PhaseCost(nil), l.phases...)
	l.mu.Unlock()
	sort.Slice(phases, func(i, j int) bool { return phases[i].Name < phases[j].Name })
	return LedgerSnapshot{
		ChunksScanned:      l.chunksScanned.Load(),
		ChunksPruned:       l.chunksPruned.Load(),
		ChunksFull:         l.chunksFull.Load(),
		ChunksDecoded:      l.chunksDecoded.Load(),
		ChunkCacheHits:     l.chunkCacheHits.Load(),
		BytesRead:          l.bytesRead.Load(),
		StoreChunksDecoded: l.storeChunksDecoded.Load(),
		RPCs:               l.rpcs.Load(),
		BytesWire:          l.bytesWire.Load(),
		CPUNs:              l.cpuNs.Load(),
		AllocBytes:         l.allocBytes.Load(),
		CancelledAt:        l.CancelledAt(),
		Phases:             phases,
	}
}

// Add accumulates another query's snapshot into this ledger — the
// server's lifetime totals. Phase entries are not accumulated.
func (l *Ledger) Add(s LedgerSnapshot) {
	if l == nil {
		return
	}
	l.chunksScanned.Add(s.ChunksScanned)
	l.chunksPruned.Add(s.ChunksPruned)
	l.chunksFull.Add(s.ChunksFull)
	l.chunksDecoded.Add(s.ChunksDecoded)
	l.chunkCacheHits.Add(s.ChunkCacheHits)
	l.bytesRead.Add(s.BytesRead)
	l.storeChunksDecoded.Add(s.StoreChunksDecoded)
	l.rpcs.Add(s.RPCs)
	l.bytesWire.Add(s.BytesWire)
	l.cpuNs.Add(s.CPUNs)
	l.allocBytes.Add(s.AllocBytes)
}

// WithLedger returns a context carrying l as the current ledger.
func WithLedger(ctx context.Context, l *Ledger) context.Context {
	return context.WithValue(ctx, ledgerCtxKey, l)
}

// LedgerFrom returns the context's ledger, or nil when the context is
// unledgered (or nil). Values survive context.WithoutCancel, so async
// prefetches spawned on a query's behalf keep billing it.
func LedgerFrom(ctx context.Context) *Ledger {
	if ctx == nil {
		return nil
	}
	l, _ := ctx.Value(ledgerCtxKey).(*Ledger)
	return l
}

// allocSample reads the process-lifetime allocated-bytes counter via
// runtime/metrics (no stop-the-world, unlike runtime.ReadMemStats).
var allocSamplePool = sync.Pool{New: func() any {
	s := make([]metrics.Sample, 1)
	s[0].Name = "/gc/heap/allocs:bytes"
	return &s
}}

func totalAllocBytes() uint64 {
	sp := allocSamplePool.Get().(*[]metrics.Sample)
	metrics.Read(*sp)
	v := (*sp)[0].Value
	allocSamplePool.Put(sp)
	if v.Kind() != metrics.KindUint64 {
		return 0
	}
	return v.Uint64()
}
