//go:build unix

package obsv

import "syscall"

// processCPUNs returns the process's cumulative user+system CPU time in
// nanoseconds, or 0 when the platform cannot report it.
func processCPUNs() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
