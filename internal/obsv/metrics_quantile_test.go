package obsv

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestHistogramQuantileMonotonic: quantiles must be non-decreasing in q
// for any observation mix — interpolation inside a bucket must never
// cross bucket boundaries backwards.
func TestHistogramQuantileMonotonic(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_lat", "t", nil, nil)
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		// Spread across several buckets, including sub-first-bound and
		// beyond-last-bound values.
		h.Observe(rnd.ExpFloat64() * 0.05)
	}
	qs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	prev := -1.0
	for _, q := range qs {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile at lower q = %v", q, v, prev)
		}
		prev = v
	}
}

// TestHistogramQuantileInfBucket: observations beyond the last finite
// bound land in +Inf; quantiles falling there must report the last
// finite bound, never Inf or garbage.
func TestHistogramQuantileInfBucket(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_inf", "t", nil, []float64{0.1, 1})
	for i := 0; i < 10; i++ {
		h.Observe(50) // all +Inf
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1 {
			t.Fatalf("all-inf histogram Quantile(%v) = %v, want last finite bound 1", q, got)
		}
	}

	// Mixed: half in the first bucket, half in +Inf. The median must
	// stay within the finite buckets.
	h2 := r.NewHistogram("t_inf2", "t", nil, []float64{0.1, 1})
	for i := 0; i < 5; i++ {
		h2.Observe(0.05)
		h2.Observe(50)
	}
	if got := h2.Quantile(0.5); got > 0.1 {
		t.Fatalf("median of half-finite mix = %v, want <= first bound 0.1", got)
	}
	if got := h2.Quantile(0.99); got != 1 {
		t.Fatalf("p99 of half-inf mix = %v, want last finite bound 1", got)
	}
}

// TestHistogramQuantileAgainstExact: on a uniform sample the bucket
// estimate must land within one bucket width of the exact quantile.
func TestHistogramQuantileAgainstExact(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	h := r.NewHistogram("t_uniform", "t", nil, bounds)
	rnd := rand.New(rand.NewSource(11))
	var xs []float64
	for i := 0; i < 10000; i++ {
		v := rnd.Float64()
		xs = append(xs, v)
		h.Observe(v)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := xs[int(q*float64(len(xs)))-1]
		got := h.Quantile(q)
		if diff := got - exact; diff < -0.1 || diff > 0.1 {
			t.Fatalf("Quantile(%v) = %v, exact %v — off by more than a bucket", q, got, exact)
		}
	}
}

// TestRegisterBuildInfo: the gauge renders with the build identity in
// its labels and a constant value of 1.
func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, 3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "atlas_build_info{") {
		t.Fatalf("no atlas_build_info family rendered:\n%s", out)
	}
	for _, want := range []string{`version="` + Version + `"`, `atl="3"`, `go="go`} {
		if !strings.Contains(out, want) {
			t.Errorf("atlas_build_info missing label %s:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "atlas_build_info{") && !strings.HasSuffix(line, " 1") {
			t.Errorf("atlas_build_info value not 1: %q", line)
		}
	}
}
