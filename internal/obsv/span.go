// Package obsv is the observability seam of the repository: per-Explore
// span traces threaded through context.Context, a dependency-free
// metrics registry exported in Prometheus text format, and the request
// IDs that make a failed fan-out greppable across coordinator and
// shard-server logs.
//
// Tracing is strictly pay-for-use: when no trace rides the context,
// StartSpan returns a nil *Span whose every method is a no-op, so
// instrumented code paths cost one context lookup and a nil check.
//
// # Span trees
//
// A Trace anchors one exploration: a wall-clock start instant, a trace
// ID, and a root span. Spans record a name, a start offset from the
// trace anchor, a duration, free-form attributes and child spans. All
// offsets and durations come from the same monotonic clock reading
// (time.Since of the anchor), so within one process a parent always
// covers its children exactly.
//
// Remote subtrees — a shard server's spans returned in the
// X-Atlas-Spans response header — are grafted into the client's RPC
// span with Graft: the server-side offsets are rebased so the subtree
// sits centered inside the RPC span (the symmetric-skew estimate; the
// gap on either side is network plus envelope time). Grafted roots are
// marked Remote.
package obsv

import (
	"context"
	"crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace anchors one traced operation: an ID, a start instant and a
// root span. Safe for concurrent use by the goroutines of one
// exploration.
type Trace struct {
	id    string
	start time.Time
	ids   atomic.Int64
	root  *Span
}

// Span is one timed phase of a trace. The zero value is not used; nil
// *Span is the disabled span — every method is nil-safe.
type Span struct {
	tr   *Trace
	id   int64
	name string

	begin time.Time
	off   time.Duration // begin - trace start

	mu       sync.Mutex
	dur      time.Duration // 0 until End
	attrs    map[string]any
	children []*Span
	grafts   []*SpanJSON
}

// NewTrace starts a trace with a fresh ID and a root span of the given
// name. End the root span before calling Tree.
func NewTrace(rootName string) (*Trace, *Span) {
	return newTraceID(newID("t"), rootName)
}

// NewTraceWithID starts a trace under a caller-supplied ID — the
// server side of trace propagation, adopting the coordinator's ID.
func NewTraceWithID(id, rootName string) (*Trace, *Span) {
	return newTraceID(id, rootName)
}

func newTraceID(id, rootName string) (*Trace, *Span) {
	tr := &Trace{id: id, start: time.Now()}
	sp := &Span{tr: tr, id: tr.ids.Add(1), name: rootName, begin: tr.start}
	tr.root = sp
	return tr, sp
}

// ID returns the trace ID.
func (t *Trace) ID() string { return t.id }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// Tree snapshots the whole span tree. Call after the root span ended;
// spans still running are reported with their duration so far.
func (t *Trace) Tree() *SpanJSON { return t.root.snapshot() }

type ctxKey int

const (
	spanCtxKey ctxKey = iota
	ridCtxKey
	ledgerCtxKey
)

// WithSpan returns a context carrying sp as the current span.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey, sp)
}

// SpanFrom returns the current span of ctx, or nil when the context is
// untraced (or nil).
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey).(*Span)
	return sp
}

// StartSpan opens a child of the context's current span and returns a
// context carrying it. Untraced contexts return (ctx, nil) — and a nil
// span's methods are all no-ops — so instrumentation is free when
// disabled.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.NewChild(name)
	return context.WithValue(ctx, spanCtxKey, sp), sp
}

// NewChild opens a child span. Used directly (instead of StartSpan)
// when the child does not become the context's current span — e.g.
// per-attempt spans inside one RPC.
func (s *Span) NewChild(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	c := &Span{tr: s.tr, id: s.tr.ids.Add(1), name: name, begin: now, off: now.Sub(s.tr.start)}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// End closes the span. The duration is clamped to at least 1ns and
// extended to cover every ended child, so a finished tree is always
// well-formed: positive durations, parents covering children.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.begin)
	if d <= 0 {
		d = time.Nanosecond
	}
	s.mu.Lock()
	if s.dur == 0 {
		for _, c := range s.children {
			c.mu.Lock()
			cend := c.off + c.dur
			c.mu.Unlock()
			if cend > s.off+d {
				d = cend - s.off
			}
		}
		s.dur = d
	}
	s.mu.Unlock()
}

// Graft attaches a remote span subtree (a shard server's, decoded from
// the X-Atlas-Spans header) under this span. Offsets are rebased so
// the subtree sits centered within this span's elapsed time — the
// symmetric network-skew estimate — which keeps the finished tree
// well-formed without comparing clocks across machines.
func (s *Span) Graft(remote *SpanJSON) {
	if s == nil || remote == nil {
		return
	}
	elapsed := time.Since(s.begin).Nanoseconds()
	if remote.DurNs > elapsed {
		elapsed = remote.DurNs // clock jitter; degrade to zero skew
	}
	delta := s.off.Nanoseconds() + (elapsed-remote.DurNs)/2 - remote.StartNs
	shiftSpan(remote, delta)
	remote.Remote = true
	s.mu.Lock()
	s.grafts = append(s.grafts, remote)
	s.mu.Unlock()
}

func shiftSpan(sp *SpanJSON, delta int64) {
	sp.StartNs += delta
	for _, c := range sp.Children {
		shiftSpan(c, delta)
	}
}

// TraceHeaderValue renders the span's wire context for the
// X-Atlas-Trace request header: "traceID/spanID".
func (s *Span) TraceHeaderValue() string {
	if s == nil {
		return ""
	}
	return s.tr.id + "/" + strconv.FormatInt(s.id, 10)
}

// ParseTraceHeader splits an X-Atlas-Trace value into its trace ID and
// parent span ID.
func ParseTraceHeader(v string) (traceID string, parentID int64, ok bool) {
	i := strings.LastIndexByte(v, '/')
	if i <= 0 {
		return "", 0, false
	}
	id, err := strconv.ParseInt(v[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return v[:i], id, true
}

// SpanJSON is the serialized form of a span tree: offsets and
// durations in nanoseconds relative to the trace anchor.
type SpanJSON struct {
	ID       int64          `json:"id,omitempty"`
	Name     string         `json:"name"`
	StartNs  int64          `json:"startNs"`
	DurNs    int64          `json:"durNs"`
	Remote   bool           `json:"remote,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanJSON    `json:"children,omitempty"`
}

func (s *Span) snapshot() *SpanJSON {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := &SpanJSON{ID: s.id, Name: s.name, StartNs: s.off.Nanoseconds(), DurNs: s.dur.Nanoseconds()}
	if s.dur == 0 {
		out.DurNs = time.Since(s.begin).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			out.Attrs[k] = v
		}
	}
	kids := append([]*Span(nil), s.children...)
	grafts := append([]*SpanJSON(nil), s.grafts...)
	s.mu.Unlock()
	for _, c := range kids {
		out.Children = append(out.Children, c.snapshot())
	}
	out.Children = append(out.Children, grafts...)
	return out
}

// EncodeSpanTree packs a span tree for the X-Atlas-Spans response
// header: base64 over compact JSON.
func EncodeSpanTree(sp *SpanJSON) (string, error) {
	b, err := json.Marshal(sp)
	if err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(b), nil
}

// DecodeSpanTree unpacks an X-Atlas-Spans header value.
func DecodeSpanTree(s string) (*SpanJSON, error) {
	b, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("obsv: bad span encoding: %w", err)
	}
	var sp SpanJSON
	if err := json.Unmarshal(b, &sp); err != nil {
		return nil, fmt.Errorf("obsv: bad span tree: %w", err)
	}
	return &sp, nil
}

// NewRequestID generates a short random request ID ("q-xxxxxxxxxxxx").
func NewRequestID() string { return newID("q") }

var idFallback atomic.Uint64

func newID(prefix string) string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; degrade to a
		// process-local counter rather than failing a query over an ID.
		binary.BigEndian.PutUint32(b[2:], uint32(idFallback.Add(1)))
	}
	return prefix + "-" + fmt.Sprintf("%x", b[:])
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridCtxKey, id)
}

// RequestIDFrom returns the context's request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ridCtxKey).(string)
	return id
}
