package remote

import (
	"context"
	"testing"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/obsv"
	"repro/internal/query"
	"repro/internal/shard"
)

// fabricCounters bundles every counter plane the ledger mirrors:
// the cartographer's scan stats, the shard set's store I/O, and the
// opener's fabric accounting. Comparable, so stability polling can
// just compare struct values.
type fabricCounters struct {
	scan engine.Snapshot
	io   colstore.IOStats
	fab  Stats
}

func readFabricCounters(cart *core.Cartographer, set *shard.Set, op *Opener) fabricCounters {
	return fabricCounters{scan: cart.ScanStats(), io: set.IOStats(), fab: op.Stats()}
}

// waitSettled polls until two consecutive reads agree — detached
// prefetches land asynchronously, and both the counters and the ledger
// must stop moving before a delta comparison means anything.
func waitSettled(t *testing.T, read func() fabricCounters) fabricCounters {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	prev := read()
	for {
		time.Sleep(25 * time.Millisecond)
		cur := read()
		if cur == prev {
			return cur
		}
		if time.Now().After(deadline) {
			t.Fatalf("counters never settled:\n  %+v\nvs\n  %+v", prev, cur)
		}
		prev = cur
	}
}

// TestLedgerExactnessOnFabric is the resource-ledger acceptance test:
// on a 2-shard × 2-replica fabric, an exploration run under a ledger
// context must be billed EXACTLY — the ledger's scan, store, and
// fabric planes equal the deltas of the pre-existing counters
// (engine.ScanStats, colstore.IOStats, opener Stats) over the same
// query. The ledger bills at the same call sites as those counters,
// so any drift is a missed or double-billed site.
func TestLedgerExactnessOnFabric(t *testing.T) {
	testLedgerExactness(t, false)
}

// TestLedgerExactnessDeferredOpen covers the deferred-open billing
// path: the first query forces the shard opens, and the open's own
// metadata/zone RPCs must land on its bill like everything else.
func TestLedgerExactnessDeferredOpen(t *testing.T) {
	testLedgerExactness(t, true)
}

func testLedgerExactness(t *testing.T, deferOpen bool) {
	tbl := datagen.Census(8_000, 43)
	local := writeShardedInputs(t, tbl, 2, 256)
	rf := startReplicatedFabric(t, local, 2)

	opener := NewOpener(Options{Timeout: 10 * time.Second})
	set, err := shard.OpenWith(rf.manifest, shard.Options{Remote: opener, Defer: deferOpen})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	opts := core.DefaultOptions()
	opts.Parallelism = 2
	cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(opts.Parallelism))
	if err != nil {
		t.Fatal(err)
	}

	read := func() fabricCounters { return readFabricCounters(cart, set, opener) }
	q := query.New("census", query.NewRange("age", 25, 60))

	// Two passes: a cold one (stats, dictionaries, and chunks all paid
	// on the wire) and a warm one (mostly cache hits). Exactness must
	// hold at ANY cache state — the bill changes, the match does not.
	for pass, name := range []string{"cold", "warm"} {
		led := obsv.NewLedger()
		ctx := obsv.WithLedger(context.Background(), led)

		before := waitSettled(t, read)
		res, err := cart.ExploreCtx(ctx, q)
		if err != nil {
			t.Fatalf("%s explore: %v", name, err)
		}
		if len(res.Maps) == 0 {
			t.Fatalf("%s explore returned no maps", name)
		}
		led.Finish()

		// Settle counters AND the ledger together: a detached prefetch
		// bills both sides when it lands, so snapshot only once neither
		// is moving.
		var s obsv.LedgerSnapshot
		after := waitSettled(t, func() fabricCounters {
			c := read()
			s = led.Snapshot()
			return c
		})

		if got, want := s.ChunksScanned, after.scan.ChunksScanned-before.scan.ChunksScanned; got != want {
			t.Errorf("%s: ledger ChunksScanned = %d, scan-stat delta = %d", name, got, want)
		}
		if got, want := s.ChunksPruned, after.scan.ChunksPruned-before.scan.ChunksPruned; got != want {
			t.Errorf("%s: ledger ChunksPruned = %d, scan-stat delta = %d", name, got, want)
		}
		if got, want := s.ChunksFull, after.scan.ChunksFull-before.scan.ChunksFull; got != want {
			t.Errorf("%s: ledger ChunksFull = %d, scan-stat delta = %d", name, got, want)
		}
		if got, want := s.ChunksDecoded, after.scan.ChunksDecoded-before.scan.ChunksDecoded; got != want {
			t.Errorf("%s: ledger ChunksDecoded = %d, scan-stat delta = %d", name, got, want)
		}
		if got, want := s.ChunkCacheHits, after.scan.ChunkCacheHits-before.scan.ChunkCacheHits; got != want {
			t.Errorf("%s: ledger ChunkCacheHits = %d, scan-stat delta = %d", name, got, want)
		}
		if got, want := s.BytesRead, after.io.BytesRead-before.io.BytesRead; got != want {
			t.Errorf("%s: ledger BytesRead = %d, store delta = %d", name, got, want)
		}
		if got, want := s.StoreChunksDecoded, after.io.ChunksDecoded-before.io.ChunksDecoded; got != want {
			t.Errorf("%s: ledger StoreChunksDecoded = %d, store delta = %d", name, got, want)
		}
		if got, want := s.RPCs, after.fab.RPCs-before.fab.RPCs; got != want {
			t.Errorf("%s: ledger RPCs = %d, opener delta = %d", name, got, want)
		}
		if got, want := s.BytesWire, after.fab.BytesIn-before.fab.BytesIn; got != want {
			t.Errorf("%s: ledger BytesWire = %d, opener delta = %d", name, got, want)
		}

		// The cold pass must actually exercise the fabric — an exact
		// match of all-zero deltas would prove nothing.
		if pass == 0 {
			if s.RPCs == 0 || s.BytesWire == 0 {
				t.Errorf("cold pass billed no fabric traffic: %+v", s)
			}
			if s.ChunksScanned+s.ChunksPruned+s.ChunksFull == 0 {
				t.Errorf("cold pass billed no chunk verdicts: %+v", s)
			}
		}
	}
}
