package remote

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/obsv"
	"repro/internal/query"
	"repro/internal/shard"
)

// end-to-end trace coverage: a profiled exploration over the remote
// fabric must come back as ONE well-formed span tree — coordinator
// phases, RPC attempts, and the shard servers' own spans grafted under
// the RPCs that triggered them — even while chaos kills a replica
// mid-Explore.

// walkSpans visits every node of a span tree, parents first.
func walkSpans(sp *obsv.SpanJSON, fn func(*obsv.SpanJSON)) {
	fn(sp)
	for _, c := range sp.Children {
		walkSpans(c, fn)
	}
}

// checkSpanTree asserts the satellite-3 invariants on a profile:
// positive durations, children contained in their parents.
func checkSpanTree(t *testing.T, sp *obsv.SpanJSON) {
	t.Helper()
	if sp.DurNs <= 0 {
		t.Fatalf("span %q has non-positive duration %d", sp.Name, sp.DurNs)
	}
	if sp.StartNs < 0 {
		t.Fatalf("span %q starts before the trace anchor", sp.Name)
	}
	for _, c := range sp.Children {
		if c.StartNs < sp.StartNs || c.StartNs+c.DurNs > sp.StartNs+sp.DurNs {
			t.Fatalf("child %q [%d,%d] escapes parent %q [%d,%d]",
				c.Name, c.StartNs, c.StartNs+c.DurNs, sp.Name, sp.StartNs, sp.StartNs+sp.DurNs)
		}
		checkSpanTree(t, c)
	}
}

// TestProfiledRemoteExploreSpanTree is the tracing acceptance test: a
// 2-shard × 2-replica fabric loses a replica two requests into a
// profiled exploration, and the trace must still land as one
// well-formed tree with the shard servers' spans nested under the
// coordinator's RPCs — including the failed attempt.
func TestProfiledRemoteExploreSpanTree(t *testing.T) {
	tbl := datagen.Census(8_000, 13)
	local := writeShardedInputs(t, tbl, 2, 256)
	rf := startReplicatedFabric(t, local, 2)

	opener := NewOpener(Options{Timeout: 5 * time.Second, RetryWait: time.Millisecond, BreakerCooldown: time.Minute})
	set, err := shard.OpenWith(rf.manifest, shard.Options{Remote: opener})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	// Arm the death AFTER the open: shard 0's primary serves the
	// metadata, then dies two requests into the exploration.
	rf.injectors[0][0].KillAfter(2)

	opts := core.DefaultOptions()
	opts.Parallelism = 2
	cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(opts.Parallelism))
	if err != nil {
		t.Fatal(err)
	}

	tr, root := obsv.NewTrace("explore")
	ctx := obsv.WithSpan(context.Background(), root)
	res, err := cart.ExploreCtx(ctx, query.New("census", query.NewRange("age", 20, 70)))
	root.End()
	if err != nil {
		t.Fatalf("profiled exploration failed despite a live replica: %v", err)
	}
	if len(res.Maps) == 0 {
		t.Fatal("exploration returned no maps")
	}

	tree := tr.Tree()
	checkSpanTree(t, tree)
	if tree.Name != "explore" {
		t.Fatalf("root span is %q, want explore", tree.Name)
	}

	var rpcs, attempts, grafted, failedAttempts int
	walkSpans(tree, func(sp *obsv.SpanJSON) {
		switch {
		case strings.HasPrefix(sp.Name, "rpc "):
			rpcs++
		case sp.Name == "attempt":
			attempts++
			if _, ok := sp.Attrs["error"]; ok {
				failedAttempts++
			}
		}
		if sp.Remote {
			grafted++
			if !strings.HasPrefix(sp.Name, "shard ") {
				t.Errorf("remote span %q does not look like a shard-server root", sp.Name)
			}
		}
	})
	if rpcs == 0 {
		t.Error("no rpc spans in the profile")
	}
	if attempts < rpcs {
		t.Errorf("fewer attempt spans (%d) than rpcs (%d)", attempts, rpcs)
	}
	if grafted == 0 {
		t.Error("no shard-server subtree grafted into the coordinator trace")
	}
	if failedAttempts == 0 {
		t.Error("the killed replica's failed attempt left no span")
	}
	if opener.Stats().Failovers == 0 {
		t.Error("no failover recorded while a replica was dying")
	}

	// Perfetto acceptance: the same traced 2-shard × 2-replica run must
	// export as valid Chrome trace-event JSON, with the shard servers'
	// grafted subtrees appearing as their own processes.
	b, err := obsv.PerfettoTrace(tree)
	if err != nil {
		t.Fatalf("perfetto export: %v", err)
	}
	var f struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatalf("perfetto export is not valid trace-event JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	pids := map[int]bool{}
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.Pid] = true
		}
	}
	if !pids[1] {
		t.Error("perfetto export has no coordinator (pid 1) slices")
	}
	if len(pids) < 2 {
		t.Error("perfetto export gave the shard servers no process of their own")
	}
}

// TestUntracedExploreStaysUntraced: without a span in the context the
// fabric must not emit trace headers, and the servers must not build
// span trees (the wrap path stays on the zero-copy write-through).
func TestUntracedExploreStaysUntraced(t *testing.T) {
	tbl := datagen.Census(2_000, 5)
	local := writeShardedInputs(t, tbl, 1, 256)
	rf := startReplicatedFabric(t, local, 1)
	opener := NewOpener(Options{Timeout: 5 * time.Second})
	set, err := shard.OpenWith(rf.manifest, shard.Options{Remote: opener})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if _, _, err := set.RemotePredicateCount(context.Background(), 0, query.NewRange("age", 10, 60)); err != nil {
		t.Fatal(err)
	}
}

// TestShardErrorCarriesRequestID: when the fabric gives up on a shard,
// the error names the request id from the context, so a coordinator
// log line and the shard servers' slow-request lines correlate.
func TestShardErrorCarriesRequestID(t *testing.T) {
	tbl := datagen.Census(1_000, 3)
	local := writeShardedInputs(t, tbl, 1, 256)
	rf := startReplicatedFabric(t, local, 1)
	opener := NewOpener(Options{Timeout: time.Second, Retries: -1, RetryWait: time.Millisecond})
	set, err := shard.OpenWith(rf.manifest, shard.Options{Remote: opener})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	rf.injectors[0][0].KillAfter(0)

	ctx := obsv.WithRequestID(context.Background(), "q-cafe01")
	_, _, err = set.RemotePredicateCount(ctx, 0, query.NewRange("age", 0, 50))
	if err == nil {
		t.Fatal("predicate count succeeded against a dead shard")
	}
	if !strings.Contains(err.Error(), "rid q-cafe01") {
		t.Errorf("shard error does not carry the request id: %v", err)
	}
}
