// Package chaos is the fabric's fault-injection proxy: an http.Handler
// that fronts a shard server and misbehaves on command. Tests (and the
// atlasbench failover scenario) wrap each replica of an in-process
// fabric in an Injector, then script the failures a production fleet
// actually sees — a peer that dies mid-run, a slow link, a truncated
// or bit-flipped body, an overloaded server answering 500s — and
// assert that explorations survive them byte-identically.
//
// The injector is deliberately dumb: no goroutines, no schedules, just
// a mutable fault plan consulted per request. Faults are flipped at
// runtime (SetFault, KillAfter) so a test can break a replica at an
// exact point in an exploration's request stream.
package chaos

import (
	"bytes"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Fault names one way to misbehave.
type Fault int

const (
	// None serves requests faithfully.
	None Fault = iota
	// Delay sleeps before serving (a slow peer; pair with a client
	// timeout shorter than the delay to simulate a hang).
	Delay
	// Truncate serves only the first half of the response body while
	// keeping the original headers — the declared length and CRC no
	// longer match what arrives.
	Truncate
	// Corrupt flips one bit of the response body, headers untouched —
	// the CRC check on the client must catch it.
	Corrupt
	// Error5xx answers 500 without consulting the inner handler.
	Error5xx
	// Kill aborts the connection without writing a response — what a
	// killed process looks like from the coordinator.
	Kill
)

// Injector wraps a shard server handler with a scriptable fault plan.
// Safe for concurrent use.
type Injector struct {
	inner http.Handler

	mu        sync.Mutex
	fault     Fault
	delay     time.Duration
	killAfter int64 // with killAfter >= 0: healthy until that many requests served, then Kill
	match     func(*http.Request) bool

	requests atomic.Int64
	injected atomic.Int64
}

// Wrap fronts inner with a (initially faultless) injector.
func Wrap(inner http.Handler) *Injector {
	return &Injector{inner: inner, killAfter: -1}
}

// SetFault replaces the fault plan.
func (in *Injector) SetFault(f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fault = f
	in.killAfter = -1
}

// SetDelay sets the sleep used by the Delay fault.
func (in *Injector) SetDelay(d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.delay = d
}

// KillAfter arms a deterministic mid-run death: the next n requests
// are served faithfully, every request after them aborts. n=0 kills
// immediately. A killed "process" does not discriminate by path, so
// KillAfter ignores any Match filter.
func (in *Injector) KillAfter(n int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fault = None
	in.killAfter = in.requests.Load() + n
}

// Heal restores faithful service.
func (in *Injector) Heal() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fault = None
	in.killAfter = -1
}

// Match restricts path-scoped faults (Delay, Truncate, Corrupt,
// Error5xx) to requests fn accepts; nil (the default) matches all.
func (in *Injector) Match(fn func(*http.Request) bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.match = fn
}

// Requests counts requests that reached the injector.
func (in *Injector) Requests() int64 { return in.requests.Load() }

// Injected counts requests a fault was applied to.
func (in *Injector) Injected() int64 { return in.injected.Load() }

// ServeHTTP implements http.Handler.
func (in *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := in.requests.Add(1)
	in.mu.Lock()
	fault := in.fault
	delay := in.delay
	killed := in.killAfter >= 0 && n > in.killAfter
	matches := in.match == nil || in.match(r)
	in.mu.Unlock()

	if killed {
		in.injected.Add(1)
		panic(http.ErrAbortHandler) // abort the connection, no response
	}
	if fault == None || !matches {
		in.inner.ServeHTTP(w, r)
		return
	}
	in.injected.Add(1)
	switch fault {
	case Delay:
		time.Sleep(delay)
		in.inner.ServeHTTP(w, r)
	case Error5xx:
		http.Error(w, "chaos: injected server error", http.StatusInternalServerError)
	case Kill:
		panic(http.ErrAbortHandler)
	case Truncate, Corrupt:
		rec := &recording{header: make(http.Header)}
		in.inner.ServeHTTP(rec, r)
		body := rec.body.Bytes()
		if fault == Truncate {
			body = body[:len(body)/2]
		} else if len(body) > 0 {
			body = append([]byte(nil), body...)
			body[len(body)/2] ^= 0x40
		}
		h := w.Header()
		for k, vs := range rec.header {
			h[k] = vs
		}
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		w.WriteHeader(status)
		_, _ = w.Write(body)
	default:
		in.inner.ServeHTTP(w, r)
	}
}

// recording captures the inner handler's response for tampering.
type recording struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func (r *recording) Header() http.Header { return r.header }

func (r *recording) Write(p []byte) (int, error) { return r.body.Write(p) }

func (r *recording) WriteHeader(status int) { r.status = status }
