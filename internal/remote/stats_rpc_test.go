package remote

import (
	"context"
	"testing"

	"repro/internal/colstore"
	"repro/internal/datagen"
	"repro/internal/obsv"
	"repro/internal/shard"
)

// TestServerStatsRPC: GET /shard/v1/stats reports the shard server's
// own counters through the fabric client, keeps serving while the
// server drains, and carries the build version.
func TestServerStatsRPC(t *testing.T) {
	manifest := writeShardedInputs(t, datagen.Census(3_000, 23), 2, 256)
	f := startFabric(t, manifest, nil)

	be, err := testOpener().OpenShard([]string{f.servers[0].URL}, colstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sb, ok := be.(shard.ServerStatsBackend)
	if !ok {
		t.Fatal("fabric client does not implement shard.ServerStatsBackend")
	}
	st, err := sb.ServerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The open itself already cost meta and zones RPCs.
	if st.Requests < 2 {
		t.Errorf("Requests = %d, want >= 2 after an open", st.Requests)
	}
	if st.BytesOut == 0 {
		t.Errorf("BytesOut = 0 after served responses")
	}
	if st.Draining {
		t.Error("fresh server reports draining")
	}

	// Draining servers still answer the stats RPC — drain must be
	// observable, and report itself.
	f.shardSrv[0].SetDraining(true)
	st2, err := sb.ServerStats(context.Background())
	if err != nil {
		t.Fatalf("stats RPC refused during drain: %v", err)
	}
	if !st2.Draining {
		t.Error("draining server reports Draining=false")
	}
	if st2.Requests < st.Requests {
		t.Errorf("request counter went backwards: %d -> %d", st.Requests, st2.Requests)
	}
	f.shardSrv[0].SetDraining(false)

	// The DTO carries the build version (used by fleet dashboards to
	// spot mixed-version deployments).
	var dto shardStatsDTO
	c := be.(*Client)
	if err := c.getJSON(context.Background(), "stats", "/shard/v1/stats", nil, &dto); err != nil {
		t.Fatal(err)
	}
	if dto.Version != obsv.Version {
		t.Errorf("stats version = %q, want %q", dto.Version, obsv.Version)
	}
}

// TestSetShardServerStats: the Set-level seam the coordinator's fleet
// poller uses — remote shards poll, local shards report unpolled.
func TestSetShardServerStats(t *testing.T) {
	manifest := writeShardedInputs(t, datagen.Census(3_000, 23), 2, 256)
	f := startFabric(t, manifest, nil)
	set, err := shard.OpenWith(f.manifest, shard.Options{Remote: testOpener()})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	for i := 0; i < 2; i++ {
		st, polled, err := set.ShardServerStats(context.Background(), i)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if !polled {
			t.Fatalf("shard %d not polled over the fabric", i)
		}
		if st.Requests == 0 {
			t.Errorf("shard %d reports zero requests after opens", i)
		}
	}

	localSet, err := shard.Open(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer localSet.Close()
	_, polled, err := localSet.ShardServerStats(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if polled {
		t.Error("local shard claimed to be polled over the fabric")
	}
}
