package remote

import (
	"errors"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/session"
	"repro/internal/shard"
)

// failure-injection coverage: a remote shard that times out, truncates
// a payload or serves corrupt bytes must fail the exploration with an
// error NAMING that shard — never a panic, and never a silently partial
// map.

// exploreRemote opens the fabric manifest and runs one exploration,
// recovering any panic into a test failure.
func exploreRemote(t *testing.T, manifest string, opener *Opener, q query.Query) (res *core.Result, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("remote exploration panicked: %v", r)
		}
	}()
	set, oerr := shard.OpenWith(manifest, shard.Options{Remote: opener})
	if oerr != nil {
		return nil, oerr
	}
	defer set.Close()
	opts := core.DefaultOptions()
	opts.Parallelism = 2
	cart, cerr := core.NewCartographerWith(set.Table(), opts, set.Provider(opts.Parallelism))
	if cerr != nil {
		return nil, cerr
	}
	return cart.Explore(q)
}

// assertNamedShardError checks that err names the failing shard's URL
// through a *ShardError in its chain.
func assertNamedShardError(t *testing.T, err error, url string) {
	t.Helper()
	if err == nil {
		t.Fatal("expected an error naming the failing shard, got success")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error chain carries no *ShardError: %v", err)
	}
	if se.Location != url {
		t.Errorf("ShardError names %q, want %q", se.Location, url)
	}
	if !strings.Contains(err.Error(), url) {
		t.Errorf("error text %q does not name the shard %q", err.Error(), url)
	}
}

// dataPlane reports whether a request is on the data path (chunks or
// statistics); metadata requests stay healthy so the set opens and the
// failure hits mid-exploration — the harder case.
func dataPlane(r *http.Request) bool {
	return strings.HasSuffix(r.URL.Path, "/chunk") || strings.HasSuffix(r.URL.Path, "/values") ||
		strings.HasSuffix(r.URL.Path, "/catcounts") || strings.HasSuffix(r.URL.Path, "/boolcounts")
}

func TestRemoteShardTimeout(t *testing.T) {
	tbl := datagen.Census(4_000, 17)
	local := writeShardedInputs(t, tbl, 2, 256)
	f := startFabric(t, local, func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if dataPlane(r) {
				time.Sleep(500 * time.Millisecond)
			}
			h.ServeHTTP(w, r)
		})
	})
	opener := NewOpener(Options{Timeout: 100 * time.Millisecond, Retries: -1})
	res, err := exploreRemote(t, f.manifest, opener, query.New("census", query.NewRange("age", 18, 80)))
	if res != nil {
		t.Error("got a result from an exploration whose shard timed out; partial answers must not be served")
	}
	assertNamedShardError(t, err, f.servers[1].URL)
}

// truncating serves the real chunk answer but cuts the body in half,
// keeping the declared length — the mid-transfer connection loss shape.
func truncating(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/chunk") {
			h.ServeHTTP(w, r)
			return
		}
		rec := newRecorder()
		h.ServeHTTP(rec, r)
		for k, vs := range rec.hdr {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		body := rec.body
		w.Header().Set("Content-Length", strconv.Itoa(len(body)/2))
		w.WriteHeader(rec.status)
		_, _ = w.Write(body[:len(body)/2])
	})
}

func TestRemoteTruncatedChunk(t *testing.T) {
	tbl := datagen.Census(4_000, 19)
	local := writeShardedInputs(t, tbl, 2, 256)
	f := startFabric(t, local, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return truncating(h)
	})
	opener := NewOpener(Options{Timeout: 2 * time.Second, Retries: -1})
	res, err := exploreRemote(t, f.manifest, opener, query.New("census", query.NewRange("age", 18, 80)))
	if res != nil {
		t.Error("got a result despite truncated chunk payloads")
	}
	assertNamedShardError(t, err, f.servers[0].URL)
	if !strings.Contains(strings.ToLower(err.Error()), "truncat") && !strings.Contains(strings.ToLower(err.Error()), "eof") {
		t.Errorf("error %q does not mention truncation", err.Error())
	}
}

// corrupting flips a byte of every chunk payload while leaving the CRC
// header intact, so the client's checksum must catch it.
func corrupting(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/chunk") {
			h.ServeHTTP(w, r)
			return
		}
		rec := newRecorder()
		h.ServeHTTP(rec, r)
		for k, vs := range rec.hdr {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		body := append([]byte(nil), rec.body...)
		if len(body) > 0 {
			body[len(body)/2] ^= 0xff
		}
		w.WriteHeader(rec.status)
		_, _ = w.Write(body)
	})
}

func TestRemoteCorruptChunk(t *testing.T) {
	tbl := datagen.Census(4_000, 23)
	local := writeShardedInputs(t, tbl, 2, 256)
	f := startFabric(t, local, func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		return corrupting(h)
	})
	opener := NewOpener(Options{Timeout: 2 * time.Second, Retries: 1})
	res, err := exploreRemote(t, f.manifest, opener, query.New("census", query.NewRange("age", 18, 80)))
	if res != nil {
		t.Error("got a result despite CRC-mismatched chunk payloads")
	}
	assertNamedShardError(t, err, f.servers[1].URL)
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("error %q does not mention the checksum", err.Error())
	}
	// The client retried the corrupt payload before giving up.
	if opener.Stats().Retries == 0 {
		t.Error("corrupt payloads were not retried")
	}
}

// TestRemoteStatsPlaneError injects a 500 on the statistics plane and
// checks the session path also fails with a named error.
func TestRemoteStatsPlaneError(t *testing.T) {
	tbl := datagen.Census(4_000, 29)
	local := writeShardedInputs(t, tbl, 2, 256)
	f := startFabric(t, local, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Break both the per-attribute endpoint and its batch
			// shortcut, else the client just routes around the fault.
			if strings.HasSuffix(r.URL.Path, "/values") || strings.HasSuffix(r.URL.Path, "/batchstats") {
				http.Error(w, "synthetic shard failure", http.StatusInternalServerError)
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	opener := NewOpener(Options{Timeout: 2 * time.Second, Retries: -1})
	set, err := shard.OpenWith(f.manifest, shard.Options{Remote: opener})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	opts := core.DefaultOptions()
	opts.Parallelism = 1
	cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(1))
	if err != nil {
		t.Fatal(err)
	}
	sess := session.NewSharded(cart, set)
	if _, err := sess.Explore(query.New("census")); err == nil {
		t.Fatal("session exploration succeeded despite a failing statistics plane")
	} else {
		assertNamedShardError(t, err, f.servers[0].URL)
	}
}

// TestRemoteOpenerRequired checks the configuration error of opening a
// remote manifest without a fabric opener.
func TestRemoteOpenerRequired(t *testing.T) {
	tbl := datagen.Census(2_000, 31)
	local := writeShardedInputs(t, tbl, 2, 256)
	f := startFabric(t, local, nil)
	if _, err := shard.OpenWith(f.manifest, shard.Options{}); err == nil {
		t.Fatal("opening a remote manifest without a remote opener should fail")
	} else if !strings.Contains(err.Error(), "remote") {
		t.Errorf("error %q does not explain the missing opener", err)
	}
}

// recorder is a minimal ResponseWriter capture for the injectors.
type recorder struct {
	hdr    http.Header
	status int
	body   []byte
}

func newRecorder() *recorder { return &recorder{hdr: http.Header{}, status: http.StatusOK} }

func (r *recorder) Header() http.Header { return r.hdr }

func (r *recorder) WriteHeader(status int) { r.status = status }

func (r *recorder) Write(p []byte) (int, error) {
	r.body = append(r.body, p...)
	return len(p), nil
}
