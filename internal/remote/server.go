// Package remote implements the shard fabric: serving one .atl shard
// from its own process (atlasd -serve-shard) and consuming such shards
// from a coordinator that opens a manifest whose shard locations are
// http(s):// URLs. It is the scale-out seam of the atlas — the same
// manifest, zone maps, mergeable partial statistics and decoded-chunk
// cache as the local sharded store, with HTTP between the coordinator
// and each shard's data.
//
// # Two RPC planes
//
// The statistics plane answers per-shard aggregate questions where the
// data lives — values in row order, category and boolean counts,
// mergeable ColumnPartial bundles (fixed-edge histograms, GK sketches),
// per-predicate bitmap counts — so a sharded exploration's column
// statistics fan out as N small requests and reduce through the
// existing merge layer (internal/shard/partial.go), byte-identical to
// the local computation.
//
// The chunk plane serves raw encoded chunk payloads by (column, chunk):
// the coordinator's storage.ChunkSource for that shard, feeding the
// shared decoded-chunk cache. The wire format IS the .atl chunk
// encoding, so v3 per-chunk CRCs travel along and are re-verified on
// the client; zone-map pruning and manifest-level shard pruning
// (ShardMayMatch, deferred opens) skip whole requests the way they skip
// file reads locally.
//
// # Endpoints (all under /shard/v1/)
//
//	GET  meta                         shard identity (rows, chunk size, schema)
//	GET  zones                        per-(column, chunk) zone maps
//	GET  dict?col=N                   string column dictionary
//	GET  chunk?col=N&chunk=K          raw encoded chunk bytes + CRC header
//	GET  values?attr=A                non-NULL numeric values, row order (binary)
//	GET  catcounts?attr=A             per-code counts, local dictionary
//	GET  boolcounts?attr=A            (false, true) tallies
//	POST batchstats                   every listed attribute's stats, one trip
//	POST partials                     mergeable ColumnPartial per requested column
//	POST predcount                    rows matching one predicate (+ its bitmap
//	                                  when the request sets wantBits)
//	GET  health                       liveness probe
//
// Shard tables are immutable, so the server memoizes each attribute's
// statistics the first time any stats endpoint asks for them; repeat
// RPCs — and the batchstats fan-in — answer from that cache instead of
// rescanning the column.
package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitvec"
	"repro/internal/colstore"
	"repro/internal/engine"
	"repro/internal/obsv"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/storage"
)

// Server serves one opened .atl shard over the fabric protocol. It is
// safe for concurrent use (the store and engine entry points are).
type Server struct {
	st  *colstore.Store
	tbl *storage.Table

	// statCache memoizes per-attribute statistics (the table is
	// immutable, so a column's sorted run never changes); statComputes
	// counts actual column scans, so tests can prove repeat RPCs hit
	// the cache.
	statMu       sync.Mutex
	statCache    map[string]*statEntry
	statComputes atomic.Int64

	requests    atomic.Int64
	bytesOut    atomic.Int64
	chunkServes atomic.Int64

	// draining flips when the process received SIGTERM: health answers
	// not-OK with 503 so coordinators rotate away, while data-plane
	// endpoints keep serving until the listener drains.
	draining atomic.Bool

	// SlowThreshold, when positive, logs fabric requests that took at
	// least this long through SlowLog (set both before serving).
	SlowThreshold time.Duration
	// SlowLog receives slow-request lines; nil disables logging.
	SlowLog func(format string, args ...any)
}

// NewServer wraps an opened shard store. The store stays owned by the
// caller (Close it after the HTTP server stops).
func NewServer(st *colstore.Store) *Server {
	return &Server{st: st, tbl: st.Table(), statCache: make(map[string]*statEntry)}
}

// ServerStats counts what a shard server has sent.
type ServerStats struct {
	// Requests counts fabric requests served (including errors).
	Requests int64
	// BytesOut counts response body bytes of successful answers.
	BytesOut int64
	// StatComputes counts per-attribute statistics actually computed
	// (cache misses); repeat stats RPCs do not move it.
	StatComputes int64
	// ChunkServes counts chunk-plane payloads served.
	ChunkServes int64
}

// SetDraining flips the server's drain state: a draining shard answers
// health probes with 503 / OK=false (so replica rotation and load
// balancers stop sending new work here) while in-flight data-plane
// requests finish normally.
func (s *Server) SetDraining(on bool) { s.draining.Store(on) }

// Draining reports the drain state.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests:     s.requests.Load(),
		BytesOut:     s.bytesOut.Load(),
		StatComputes: s.statComputes.Load(),
		ChunkServes:  s.chunkServes.Load(),
	}
}

// statEntry is one attribute's memoized statistics: exactly one of the
// three shapes is populated, by the attribute's type.
type statEntry struct {
	mu   sync.Mutex
	done bool

	enc    []byte // numeric: the encoded row-order value stream
	count  int    // numeric: value count
	dict   []string
	counts []int
	falses int
	trues  int
}

// statFor computes (once) and returns attr's statistics. Concurrent
// first touches of one attribute single-flight behind its entry lock;
// different attributes compute concurrently. Failures are NOT cached —
// a lazy store's transient read error must not poison the attribute
// until restart.
func (s *Server) statFor(ctx context.Context, attr string) (*statEntry, error) {
	s.statMu.Lock()
	e := s.statCache[attr]
	if e == nil {
		e = &statEntry{}
		s.statCache[attr] = e
	}
	s.statMu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		if sp := obsv.SpanFrom(ctx); sp != nil {
			sp.SetAttr("statCached", true)
		}
		return e, nil
	}
	_, sp := obsv.StartSpan(ctx, "statcompute "+attr)
	defer sp.End()
	var f *storage.Field
	for _, fd := range s.tbl.Schema().Fields() {
		if fd.Name == attr {
			fd := fd
			f = &fd
			break
		}
	}
	if f == nil {
		return nil, fmt.Errorf("unknown attribute %q", attr)
	}
	full := bitvec.NewFull(s.tbl.NumRows())
	var err error
	// The caller's context (deadline header included) rides into the
	// column scan, so statcompute work whose caller already gave up is
	// abandoned at chunk granularity instead of run to completion.
	switch {
	case f.Type.IsNumeric():
		var vals []float64
		if vals, err = engine.NumericValuesUnderCtx(ctx, s.tbl, attr, full); err == nil {
			e.enc, e.count = encodeFloats(vals), len(vals)
		}
	case f.Type == storage.String:
		e.dict, e.counts, err = engine.CategoryCountsUnderCtx(ctx, s.tbl, attr, full)
	default:
		e.falses, e.trues, err = engine.BoolCountsUnderCtx(ctx, s.tbl, attr, full)
	}
	if err != nil {
		s.statMu.Lock()
		delete(s.statCache, attr)
		s.statMu.Unlock()
		return nil, err
	}
	e.done = true
	s.statComputes.Add(1)
	return e, nil
}

// Handler returns the fabric routing. Mount it at the server root (the
// paths carry the /shard/v1/ prefix).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /shard/v1/meta", s.wrap("meta", s.handleMeta))
	mux.HandleFunc("GET /shard/v1/zones", s.wrap("zones", s.handleZones))
	mux.HandleFunc("GET /shard/v1/dict", s.wrap("dict", s.handleDict))
	mux.HandleFunc("GET /shard/v1/chunk", s.wrap("chunk", s.handleChunk))
	mux.HandleFunc("GET /shard/v1/values", s.wrap("values", s.handleValues))
	mux.HandleFunc("GET /shard/v1/catcounts", s.wrap("catcounts", s.handleCatCounts))
	mux.HandleFunc("GET /shard/v1/boolcounts", s.wrap("boolcounts", s.handleBoolCounts))
	mux.HandleFunc("POST /shard/v1/batchstats", s.wrap("batchstats", s.handleBatchStats))
	mux.HandleFunc("POST /shard/v1/partials", s.wrap("partials", s.handlePartials))
	mux.HandleFunc("POST /shard/v1/predcount", s.wrap("predcount", s.handlePredCount))
	mux.HandleFunc("GET /shard/v1/health", s.wrap("health", s.handleHealth))
	mux.HandleFunc("GET /shard/v1/stats", s.wrap("stats", s.handleStats))
	return mux
}

// wrap is the per-endpoint middleware: request counting, slow-request
// logging, and — only when the coordinator sent a trace header — a
// server-side span tree returned in the response headers. Traced
// responses are buffered so the span tree is complete before any byte
// (or the Content-Length header) goes out; untraced requests write
// straight through and pay nothing.
func (s *Server) wrap(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		began := time.Now()
		rid := r.Header.Get(headerRequestID)
		// The coordinator's remaining deadline budget bounds this
		// request's context, so statcompute and chunk work the caller
		// will never read is abandoned server-side too.
		rctx := r.Context()
		if hv := r.Header.Get(headerDeadline); hv != "" {
			if ms, err := strconv.ParseInt(hv, 10, 64); err == nil && ms > 0 {
				var cancel context.CancelFunc
				rctx, cancel = context.WithTimeout(rctx, time.Duration(ms)*time.Millisecond)
				defer cancel()
			}
		}
		traceID, _, traced := obsv.ParseTraceHeader(r.Header.Get(headerTrace))
		if !traced {
			h(w, r.WithContext(rctx))
			s.logSlow(op, rid, time.Since(began))
			return
		}
		tr, root := obsv.NewTraceWithID(traceID, "shard "+op)
		ctx := obsv.WithSpan(rctx, root)
		if rid != "" {
			ctx = obsv.WithRequestID(ctx, rid)
		}
		rec := newBufferedResponse()
		h(rec, r.WithContext(ctx))
		root.End()
		if enc, err := obsv.EncodeSpanTree(tr.Tree()); err == nil {
			rec.hdr.Set(headerSpans, enc)
		}
		rec.flush(w)
		s.logSlow(op, rid, time.Since(began))
	}
}

// logSlow emits one slow-request line when the server is configured for
// it. The request id (when the coordinator sent one) joins this line
// with the client-side ShardError and the coordinator's own slow-query
// log.
func (s *Server) logSlow(op, rid string, dur time.Duration) {
	if s.SlowThreshold <= 0 || dur < s.SlowThreshold || s.SlowLog == nil {
		return
	}
	if rid == "" {
		rid = "-"
	}
	s.SlowLog("slow shard request: op=%s rid=%s dur=%s", op, rid, dur)
}

// bufferedResponse holds a traced response until its span tree is
// attached. Handlers fully materialize bodies anyway (writeBody), so
// buffering adds one copy, only on traced requests.
type bufferedResponse struct {
	hdr    http.Header
	status int
	body   []byte
}

func newBufferedResponse() *bufferedResponse {
	return &bufferedResponse{hdr: make(http.Header)}
}

func (b *bufferedResponse) Header() http.Header { return b.hdr }

func (b *bufferedResponse) WriteHeader(status int) {
	if b.status == 0 {
		b.status = status
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	b.body = append(b.body, p...)
	return len(p), nil
}

func (b *bufferedResponse) flush(w http.ResponseWriter) {
	for k, vs := range b.hdr {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if b.status == 0 {
		b.status = http.StatusOK
	}
	w.WriteHeader(b.status)
	_, _ = w.Write(b.body)
}

// writeBody writes a fully-materialized binary body with its length
// declared, so clients detect truncation.
func (s *Server) writeBody(w http.ResponseWriter, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
	s.bytesOut.Add(int64(len(body)))
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeBody(w, "application/json", data)
}

func httpError(w http.ResponseWriter, status int, err error) {
	http.Error(w, err.Error(), status)
}

func (s *Server) handleMeta(w http.ResponseWriter, _ *http.Request) {
	dto := metaDTO{
		Table:     s.tbl.Name(),
		Rows:      s.tbl.NumRows(),
		ChunkSize: s.st.ChunkSize,
		Version:   int(s.st.WireVersion()),
	}
	for _, f := range s.tbl.Schema().Fields() {
		dto.Columns = append(dto.Columns, colDTO{Name: f.Name, Type: typeName(f.Type)})
	}
	s.writeJSON(w, dto)
}

func (s *Server) handleZones(w http.ResponseWriter, _ *http.Request) {
	ck := s.tbl.Chunking()
	if ck == nil {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("shard table has no chunk metadata"))
		return
	}
	dto := zonesDTO{Zones: make([][]zoneDTO, len(ck.Zones))}
	for ci, zones := range ck.Zones {
		out := make([]zoneDTO, len(zones))
		for k, zm := range zones {
			out[k] = zoneToDTO(zm)
		}
		dto.Zones[ci] = out
	}
	s.writeJSON(w, dto)
}

// colParam parses and bounds-checks a column index parameter.
func (s *Server) colParam(r *http.Request) (int, error) {
	ci, err := strconv.Atoi(r.URL.Query().Get("col"))
	if err != nil || ci < 0 || ci >= s.tbl.NumCols() {
		return 0, fmt.Errorf("bad column %q", r.URL.Query().Get("col"))
	}
	return ci, nil
}

func (s *Server) handleDict(w http.ResponseWriter, r *http.Request) {
	ci, err := s.colParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if s.tbl.Schema().Field(ci).Type != storage.String {
		httpError(w, http.StatusBadRequest, fmt.Errorf("column %d is not a string column", ci))
		return
	}
	var dict []string
	switch c := s.tbl.Column(ci).(type) {
	case *storage.StringColumn:
		dict = c.Dict()
	case *storage.LazyColumn:
		dict, err = c.DictValues()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
	default:
		httpError(w, http.StatusInternalServerError, fmt.Errorf("column %d is %T", ci, s.tbl.Column(ci)))
		return
	}
	s.writeJSON(w, dictDTO{Values: dict})
}

func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	ci, err := s.colParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("chunk"))
	if err != nil || k < 0 || k >= s.st.NumChunks() {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad chunk %q", r.URL.Query().Get("chunk")))
		return
	}
	raw, crc, err := s.st.RawChunk(ci, k)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set(headerChunkCRC, fmt.Sprintf("%08x", crc))
	w.Header().Set(headerChunkLen, strconv.Itoa(len(raw)))
	s.chunkServes.Add(1)
	s.writeBody(w, "application/octet-stream", raw)
}

// attrStatus classifies an attr parameter: 400 when the request itself
// is wrong (unknown attribute, wrong type family — retrying cannot
// help), leaving later compute failures to surface as 500 so the
// client's transient-failure retry applies to them.
func (s *Server) attrStatus(attr string, want func(storage.DataType) bool) error {
	for _, f := range s.tbl.Schema().Fields() {
		if f.Name == attr {
			if !want(f.Type) {
				return fmt.Errorf("attribute %q has the wrong type for this endpoint", attr)
			}
			return nil
		}
	}
	return fmt.Errorf("unknown attribute %q", attr)
}

func (s *Server) handleValues(w http.ResponseWriter, r *http.Request) {
	attr := r.URL.Query().Get("attr")
	if err := s.attrStatus(attr, storage.DataType.IsNumeric); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	e, err := s.statFor(r.Context(), attr)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set(headerCount, strconv.Itoa(e.count))
	s.writeBody(w, "application/octet-stream", e.enc)
}

func (s *Server) handleCatCounts(w http.ResponseWriter, r *http.Request) {
	attr := r.URL.Query().Get("attr")
	if err := s.attrStatus(attr, func(t storage.DataType) bool { return t == storage.String }); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	e, err := s.statFor(r.Context(), attr)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, catCountsDTO{Dict: e.dict, Counts: e.counts})
}

func (s *Server) handleBoolCounts(w http.ResponseWriter, r *http.Request) {
	attr := r.URL.Query().Get("attr")
	if err := s.attrStatus(attr, func(t storage.DataType) bool { return t == storage.Bool }); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	e, err := s.statFor(r.Context(), attr)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, boolCountsDTO{Falses: e.falses, Trues: e.trues})
}

// handleBatchStats answers every listed attribute's statistics in one
// response: a JSON header locating each numeric attribute's float
// stream in the binary blob that follows (see encodeBatch). All
// answers come from the same memoized entries the per-attribute
// endpoints use.
func (s *Server) handleBatchStats(w http.ResponseWriter, r *http.Request) {
	var req batchReqDTO
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	schema := s.tbl.Schema()
	hdr := batchHeaderDTO{Stats: make([]batchStatDTO, 0, len(req.Attrs))}
	var blob []byte
	for _, attr := range req.Attrs {
		if err := s.attrStatus(attr, func(storage.DataType) bool { return true }); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		var typ storage.DataType
		for _, f := range schema.Fields() {
			if f.Name == attr {
				typ = f.Type
				break
			}
		}
		e, err := s.statFor(r.Context(), attr)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		switch {
		case typ.IsNumeric():
			hdr.Stats = append(hdr.Stats, batchStatDTO{Attr: attr, Kind: "numeric", Off: len(blob), Count: e.count})
			blob = append(blob, e.enc...)
		case typ == storage.String:
			hdr.Stats = append(hdr.Stats, batchStatDTO{Attr: attr, Kind: "cat", Dict: e.dict, Counts: e.counts})
		default:
			hdr.Stats = append(hdr.Stats, batchStatDTO{Attr: attr, Kind: "bool", Falses: e.falses, Trues: e.trues})
		}
	}
	body, err := encodeBatch(hdr, blob)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeBody(w, "application/octet-stream", body)
}

func (s *Server) handlePartials(w http.ResponseWriter, r *http.Request) {
	var req partialsReqDTO
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	_, psp := obsv.StartSpan(r.Context(), "partials compute")
	defer psp.End()
	out := make([]partialDTO, len(req.Specs))
	for i, spec := range req.Specs {
		var lo, hi float64
		var err error
		if spec.Lo != "" {
			if lo, err = parseFbits(spec.Lo); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
		}
		if spec.Hi != "" {
			if hi, err = parseFbits(spec.Hi); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
		}
		if spec.Col < 0 || spec.Col >= s.tbl.NumCols() {
			httpError(w, http.StatusBadRequest, fmt.Errorf("column %d out of range", spec.Col))
			return
		}
		p, err := shard.ComputeColumnPartial(s.tbl, spec.Col, lo, hi, spec.UseHist)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		out[i] = partialToDTO(p)
	}
	s.writeJSON(w, out)
}

func (s *Server) handlePredCount(w http.ResponseWriter, r *http.Request) {
	var dto predDTO
	if err := json.NewDecoder(r.Body).Decode(&dto); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	p, err := predFromDTO(dto)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.attrStatus(p.Attr, func(storage.DataType) bool { return true }); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	_, psp := obsv.StartSpan(r.Context(), "predicate eval")
	defer psp.End()
	if dto.WantBits {
		// The caller wants the selection bitmap itself, so session base
		// assembly can skip the chunk plane even for non-empty answers.
		sel, err := engine.EvalPredicate(s.tbl, p)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		s.writeJSON(w, countDTO{Count: sel.Count(), Bits: encodeWords(sel.Words())})
		return
	}
	n, err := engine.Count(s.tbl, query.New(s.tbl.Name(), p))
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, countDTO{Count: n})
}

// handleStats answers GET /shard/v1/stats: the server's own counters
// in one RPC — request/byte tallies, statistics-cache and chunk-plane
// activity, drain state, store I/O (for the cache hit rate) and build
// identity — so a coordinator can roll the whole fleet into one
// Prometheus scrape without asking N endpoints per shard. Stats stay
// served while draining: a draining shard should still be observable.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	io := s.st.IOStats()
	s.writeJSON(w, shardStatsDTO{
		Table:         s.tbl.Name(),
		Rows:          s.tbl.NumRows(),
		Requests:      s.requests.Load(),
		BytesOut:      s.bytesOut.Load(),
		StatComputes:  s.statComputes.Load(),
		ChunkServes:   s.chunkServes.Load(),
		Draining:      s.draining.Load(),
		BytesRead:     io.BytesRead,
		ChunksDecoded: io.ChunksDecoded,
		CacheHits:     io.CacheHits,
		CacheBytes:    io.CacheBytes,
		Version:       obsv.Version,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		// 503 so clients treat the probe as a failure and rotate away;
		// the body still says who is drained.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		data, _ := json.Marshal(healthDTO{OK: false, Table: s.tbl.Name(), Rows: s.tbl.NumRows()})
		_, _ = w.Write(data)
		return
	}
	s.writeJSON(w, healthDTO{OK: true, Table: s.tbl.Name(), Rows: s.tbl.NumRows()})
}
