package remote

import (
	"math/rand"
	"sync"
	"time"
)

// This file is the failover half of the fabric client: a shard's
// replica set with one circuit breaker per replica. The breaker is the
// classic three-state machine driven purely by request outcomes — no
// background prober, no goroutines:
//
//   - closed ("healthy"): requests flow; consecutive failures count up.
//   - open ("tripped"): after threshold consecutive failures the
//     replica leaves rotation for a cooldown, so a dead peer is not
//     hammered once per retry of every in-flight operation.
//   - half-open ("probing"): when the cooldown lapses, the next pick is
//     allowed through as a probe. Success closes the breaker (and the
//     replica rejoins rotation with zero strikes); failure re-trips it
//     for another cooldown.
//
// Because the breaker heals itself on the next touch after cooldown,
// the shard Set above needs no restart, reopen or manual intervention
// to recover a replica that came back — the self-healing the manifest's
// replica list promises.

// replicaState names a breaker state for health reporting.
const (
	replicaHealthy = "healthy"
	replicaTripped = "tripped"
	replicaProbing = "probing"
)

// replica is one dialable location of a shard plus its breaker state.
type replica struct {
	url string

	mu          sync.Mutex
	fails       int       // consecutive failures
	tripped     bool      // breaker open (fails reached the threshold)
	reopenAt    time.Time // when a tripped breaker allows a half-open probe
	lastErr     error
	lastLatency time.Duration // last round trip, successful or not
	attempts    int64         // cumulative requests dialed
	failures    int64         // cumulative failed requests
}

// allow reports whether the breaker admits a request now: closed
// breakers always, tripped breakers only once the cooldown has lapsed
// (the half-open probe).
func (r *replica) allow(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.tripped || !now.Before(r.reopenAt)
}

// reopenTime returns when a tripped breaker next admits a probe (zero
// for closed breakers).
func (r *replica) reopenTime() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.tripped {
		return time.Time{}
	}
	return r.reopenAt
}

// onSuccess closes the breaker and records the round-trip time.
func (r *replica) onSuccess(latency time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attempts++
	r.fails = 0
	r.tripped = false
	r.lastErr = nil
	r.lastLatency = latency
}

// onFailure counts a strike; threshold consecutive strikes trip the
// breaker for cooldown. A failed half-open probe re-trips immediately.
// latency is how long the failed attempt took (a timeout burns the
// full deadline) and is recorded against THIS replica, so health
// reports attribute failover cost to the replica that caused it. The
// return value reports whether this strike newly tripped the breaker.
func (r *replica) onFailure(err error, threshold int, cooldown time.Duration, now time.Time, latency time.Duration) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attempts++
	r.failures++
	r.fails++
	r.lastErr = err
	r.lastLatency = latency
	wasTripped := r.tripped
	if r.fails >= threshold || r.tripped {
		r.tripped = true
		r.reopenAt = now.Add(cooldown)
	}
	return r.tripped && !wasTripped
}

// health snapshots the replica for ShardHealth / GET /api/shards.
func (r *replica) health(now time.Time) (state string, fails int, attempts, failures int64, lastErr error, latency time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case !r.tripped:
		state = replicaHealthy
	case now.Before(r.reopenAt):
		state = replicaTripped
	default:
		state = replicaProbing
	}
	return state, r.fails, r.attempts, r.failures, r.lastErr, r.lastLatency
}

// backoffJitter returns the sleep before re-attempting the SAME replica:
// exponential in the attempt number, capped at maxWait, with ±50%
// jitter so a fleet of coordinators retrying one recovering shard does
// not thunder in lockstep. Rotating to a different replica sleeps not
// at all — the whole point of a replica set is that the next answer can
// come from somewhere healthy immediately.
func backoffJitter(base time.Duration, attempt int, maxWait time.Duration) time.Duration {
	if base <= 0 || attempt <= 0 {
		return 0
	}
	d := base << uint(attempt-1)
	if d > maxWait || d <= 0 {
		d = maxWait
	}
	// [0.5, 1.5) of the exponential step.
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}
