package remote

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/colstore"
	"repro/internal/shard"
)

// Options tunes an Opener's clients.
type Options struct {
	// Timeout bounds each request, connection included (default 30s).
	Timeout time.Duration
	// Retries is the number of extra attempts after a transient failure
	// (network error, 5xx, CRC mismatch, truncation), on top of the one
	// attempt every replica always gets. 0 uses the default of 2;
	// negative disables extra retries.
	Retries int
	// RetryWait is the base backoff before re-attempting the SAME
	// replica (default 50ms). It grows exponentially with consecutive
	// same-replica attempts, jittered ±50%; rotating to a different
	// replica never sleeps.
	RetryWait time.Duration
	// MaxRetryWait caps the exponential backoff (default 2s).
	MaxRetryWait time.Duration
	// BreakerThreshold is how many consecutive failures trip one
	// replica's circuit breaker, taking it out of rotation. 0 uses the
	// default of 3; negative disables the breakers.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped replica stays out of
	// rotation before the next touch probes it half-open (default 2s).
	BreakerCooldown time.Duration
	// MaxInflight bounds concurrent requests per shard (default 32).
	MaxInflight int
	// Transport overrides the pooled HTTP transport (tests, custom TLS).
	Transport http.RoundTripper
}

// Opener opens fabric clients for http(s):// shard locations — the
// shard.RemoteOpener a coordinator passes to shard.OpenWith. All
// clients of one Opener share a pooled transport (connection reuse
// across shards of the same host) and one traffic counter set.
type Opener struct {
	opts  Options
	hc    *http.Client
	stats counters
}

// NewOpener builds an Opener; zero Options give production defaults.
func NewOpener(o Options) *Opener {
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	switch {
	case o.Retries == 0:
		o.Retries = 2
	case o.Retries < 0:
		o.Retries = 0
	}
	if o.RetryWait <= 0 {
		o.RetryWait = 50 * time.Millisecond
	}
	if o.MaxRetryWait <= 0 {
		o.MaxRetryWait = 2 * time.Second
	}
	switch {
	case o.BreakerThreshold == 0:
		o.BreakerThreshold = 3
	case o.BreakerThreshold < 0:
		// Disabled: a threshold no failure streak reaches.
		o.BreakerThreshold = int(^uint(0) >> 1)
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 32
	}
	transport := o.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        128,
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	return &Opener{opts: o, hc: &http.Client{Timeout: o.Timeout, Transport: transport}}
}

// OpenShard implements shard.RemoteOpener: it dials the shard's meta
// and zones endpoints (rotating across the replica locations, primary
// first) and returns a backend whose chunk fetches feed the set's
// shared decoded-chunk cache (store.Cache; a private cache is created
// when the caller shares none).
func (o *Opener) OpenShard(locations []string, store colstore.Options) (shard.Backend, error) {
	return o.OpenShardCtx(context.Background(), locations, store)
}

// OpenShardCtx is OpenShard with the caller's context riding into the
// open's metadata and zone-map round trips — when a query forces a
// deferred shard open, those RPCs are traced and billed to that query.
// It implements shard.CtxRemoteOpener.
func (o *Opener) OpenShardCtx(ctx context.Context, locations []string, store colstore.Options) (shard.Backend, error) {
	if len(locations) == 0 {
		return nil, fmt.Errorf("remote: no locations to open")
	}
	cache := store.Cache
	if cache == nil {
		cache = colstore.NewChunkCache(colstore.ResolveCacheBudget(store.CacheBytes))
	}
	reps := make([]*replica, 0, len(locations))
	seen := make(map[string]bool, len(locations))
	for _, loc := range locations {
		u := strings.TrimRight(loc, "/")
		if seen[u] {
			continue
		}
		seen[u] = true
		reps = append(reps, &replica{url: u})
	}
	c := &Client{
		primary:          reps[0].url,
		reps:             reps,
		hc:               o.hc,
		sem:              make(chan struct{}, o.opts.MaxInflight),
		retries:          o.opts.Retries,
		retryWait:        o.opts.RetryWait,
		maxRetryWait:     o.opts.MaxRetryWait,
		breakerThreshold: o.opts.BreakerThreshold,
		breakerCooldown:  o.opts.BreakerCooldown,
		cache:            cache,
		stats:            &o.stats,
	}
	if err := c.initCtx(ctx); err != nil {
		return nil, err
	}
	c.warmReplicas()
	return c, nil
}

// Stats is the aggregate fabric traffic of an Opener's clients.
type Stats struct {
	// RPCs counts requests sent (per attempt).
	RPCs int64
	// BytesIn counts response body bytes received.
	BytesIn int64
	// ChunkFetches counts chunk payloads fetched and decoded (cache
	// misses that went over the wire).
	ChunkFetches int64
	// Retries counts extra attempts after transient failures.
	Retries int64
	// Failovers counts retries that rotated to a different replica.
	Failovers int64
	// BreakerTrips counts circuit breakers newly tripped (a replica
	// leaving rotation after its failure threshold).
	BreakerTrips int64
}

// Stats snapshots the aggregate counters.
func (o *Opener) Stats() Stats {
	return Stats{
		RPCs:         o.stats.rpcs.Load(),
		BytesIn:      o.stats.bytesIn.Load(),
		ChunkFetches: o.stats.chunkFetches.Load(),
		Retries:      o.stats.retries.Load(),
		Failovers:    o.stats.failovers.Load(),
		BreakerTrips: o.stats.breakerTrips.Load(),
	}
}
