package remote

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/session"
	"repro/internal/shard"
	"repro/internal/storage"
)

// fabric is an in-process remote deployment: one httptest shard server
// per shard file of a local manifest, plus the rewritten coordinator
// manifest pointing at them.
type fabric struct {
	manifest string // remote manifest path
	servers  []*httptest.Server
	stores   []*colstore.Store
	shardSrv []*Server
}

// startFabric spins one shard server per shard of localManifest. wrap,
// when non-nil, decorates shard i's handler (failure injection).
func startFabric(t *testing.T, localManifest string, wrap func(i int, h http.Handler) http.Handler) *fabric {
	t.Helper()
	m, err := shard.ReadManifest(localManifest)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Dir(localManifest)
	f := &fabric{}
	urls := make([]string, len(m.Shards))
	for i, sf := range m.Shards {
		st, err := colstore.OpenWith(filepath.Join(dir, sf.File), colstore.Options{Mode: colstore.ModeLazy})
		if err != nil {
			t.Fatal(err)
		}
		rs := NewServer(st)
		var h http.Handler = rs.Handler()
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		f.stores = append(f.stores, st)
		f.servers = append(f.servers, ts)
		f.shardSrv = append(f.shardSrv, rs)
		urls[i] = ts.URL
	}
	rm, err := shard.RemoteManifest(m, urls)
	if err != nil {
		t.Fatal(err)
	}
	f.manifest = filepath.Join(t.TempDir(), "remote.atlm")
	if err := shard.WriteManifestFile(f.manifest, rm); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, ts := range f.servers {
			ts.Close()
		}
		for _, st := range f.stores {
			st.Close()
		}
	})
	return f
}

// writeShardedInputs ingests tbl as a sharded store under a temp dir.
func writeShardedInputs(t *testing.T, tbl *storage.Table, shards, chunkSize int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.atlm")
	if _, err := shard.WriteSharded(path, tbl, shard.IngestOptions{Shards: shards, ChunkSize: chunkSize}); err != nil {
		t.Fatal(err)
	}
	return path
}

func testOpener() *Opener {
	return NewOpener(Options{Timeout: 10 * time.Second})
}

// renderResult flattens a Result into a deterministic string (everything
// except timing) — the byte-identity yardstick shared with the shard
// package's tests.
func renderResult(r *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s | base=%d/%d\n", r.Input.String(), r.BaseCount, r.TotalRows)
	for _, f := range r.Flagged {
		fmt.Fprintf(&b, "flag %s %s\n", f.Attr, f.Reason)
	}
	for _, m := range r.Maps {
		b.WriteString(m.String())
	}
	return b.String()
}

// TestRemoteExploreByteIdentical is the tentpole acceptance test: a
// sharded Explore whose shards are served over the fabric must be
// byte-identical to the local sharded run — and to the unsharded
// table — at every (shard count, parallelism) pair.
func TestRemoteExploreByteIdentical(t *testing.T) {
	tbl := datagen.Census(12_000, 3)
	queries := []query.Query{
		query.New("census"),
		query.New("census", query.NewRange("age", 20, 70)),
		query.New("census", query.NewRange("age", 25, 60), query.NewIn("sex", "F")),
	}
	refs := make([]string, len(queries))
	refOpts := core.DefaultOptions()
	refOpts.Parallelism = 1
	refCart, err := core.NewCartographer(tbl, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		ref, err := refCart.Explore(q)
		if err != nil {
			t.Fatal(err)
		}
		refs[qi] = renderResult(ref)
	}
	for _, shards := range []int{1, 2, 4} {
		local := writeShardedInputs(t, tbl, shards, 256)
		f := startFabric(t, local, nil)
		set, err := shard.OpenWith(f.manifest, shard.Options{Remote: testOpener()})
		if err != nil {
			t.Fatal(err)
		}
		defer set.Close()
		for _, workers := range []int{1, 2, 8} {
			opts := core.DefaultOptions()
			opts.Parallelism = workers
			cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(workers))
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				res, err := cart.Explore(q)
				if err != nil {
					t.Fatalf("shards=%d workers=%d query %d: %v", shards, workers, qi, err)
				}
				if got := renderResult(res); got != refs[qi] {
					t.Errorf("shards=%d workers=%d query %d: remote result differs from unsharded\nwant:\n%s\ngot:\n%s",
						shards, workers, qi, refs[qi], got)
				}
			}
		}
	}
}

// TestRemoteSelectiveTransfersOnlyTouchedChunks asserts the chunk-plane
// economics: a selective exploration over a deferred remote set must
// fetch payloads only for chunks zone maps could not rule out — most of
// the table never crosses the wire, and untouched shards are never even
// dialed.
func TestRemoteSelectiveTransfersOnlyTouchedChunks(t *testing.T) {
	const n = 8192
	schema := storage.MustSchema(
		storage.Field{Name: "ts", Type: storage.Int64},
		storage.Field{Name: "load", Type: storage.Float64},
	)
	ts := make([]int64, n)
	load := make([]float64, n)
	for i := range ts {
		ts[i] = int64(i)
		load[i] = float64((i*37)%1000) / 10
	}
	tbl := storage.MustTable("events", schema, []storage.Column{
		storage.NewInt64Column(ts, nil),
		storage.NewFloat64Column(load, nil),
	})
	local := writeShardedInputs(t, tbl, 4, 256)
	f := startFabric(t, local, nil)
	opener := testOpener()
	set, err := shard.OpenWith(f.manifest, shard.Options{Remote: opener, Defer: true})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	totalChunks := set.Table().Chunking().NumChunks(n) * tbl.NumCols()

	// A ~2% ts band living inside one shard.
	lo := float64(n / 2)
	q := query.New("events", query.NewRange("ts", lo, lo+float64(n/50)))
	opts := core.DefaultOptions()
	opts.Parallelism = 1
	cart, err := core.NewCartographer(set.Table(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cart.Explore(q); err != nil {
		t.Fatal(err)
	}
	st := opener.Stats()
	if st.ChunkFetches == 0 {
		t.Fatal("no chunks crossed the wire; expected a few")
	}
	if st.ChunkFetches >= int64(totalChunks)/2 {
		t.Errorf("fetched %d of %d chunks over the wire; want under half", st.ChunkFetches, totalChunks)
	}
	if opened := set.OpenedShards(); opened > 2 {
		t.Errorf("opened %d of 4 remote shards; deferred open should skip disjoint ones", opened)
	}
}

// TestRemoteSessionMatchesLocal drives a drill-down session over the
// fabric and checks every node against the local sharded session.
func TestRemoteSessionMatchesLocal(t *testing.T) {
	tbl := datagen.Census(8_000, 7)
	local := writeShardedInputs(t, tbl, 2, 256)

	localSet, err := shard.Open(local)
	if err != nil {
		t.Fatal(err)
	}
	defer localSet.Close()
	f := startFabric(t, local, nil)
	remoteSet, err := shard.OpenWith(f.manifest, shard.Options{Remote: testOpener()})
	if err != nil {
		t.Fatal(err)
	}
	defer remoteSet.Close()

	opts := core.DefaultOptions()
	opts.Parallelism = 2
	run := func(set *shard.Set) []string {
		cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(opts.Parallelism))
		if err != nil {
			t.Fatal(err)
		}
		sess := session.NewSharded(cart, set)
		node, err := sess.Explore(query.New("census", query.NewRange("age", 18, 80)))
		if err != nil {
			t.Fatal(err)
		}
		out := []string{renderResult(node.Result)}
		node, err = sess.DrillDown(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, renderResult(node.Result))
		return out
	}
	localRes := run(localSet)
	remoteRes := run(remoteSet)
	for i := range localRes {
		if localRes[i] != remoteRes[i] {
			t.Errorf("session step %d differs between local and remote:\nlocal:\n%s\nremote:\n%s", i, localRes[i], remoteRes[i])
		}
	}
}

// TestRemoteSessionPredCountSkipsChunks exercises the per-predicate
// bitmap-count half of the statistics plane: a session predicate that
// selects nothing, over unclustered data whose per-chunk zone maps
// cannot prove it (every chunk's min/max spans the queried band), must
// be answered by predcount RPCs alone — zero chunk payloads cross the
// wire.
func TestRemoteSessionPredCountSkipsChunks(t *testing.T) {
	const n = 4096
	schema := storage.MustSchema(storage.Field{Name: "v", Type: storage.Int64})
	vals := make([]int64, n)
	for i := range vals {
		v := int64(i*37) % 1000
		if v >= 500 && v <= 510 {
			v += 100 // a gap inside the value range: selectable, never matched
		}
		vals[i] = v
	}
	tbl := storage.MustTable("events", schema, []storage.Column{storage.NewInt64Column(vals, nil)})
	local := writeShardedInputs(t, tbl, 4, 256)

	run := func(set *shard.Set) string {
		opts := core.DefaultOptions()
		opts.Parallelism = 1
		cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(1))
		if err != nil {
			t.Fatal(err)
		}
		sess := session.NewSharded(cart, set)
		node, err := sess.Explore(query.New("events", query.NewRange("v", 501, 509)))
		if err != nil {
			t.Fatal(err)
		}
		return renderResult(node.Result)
	}
	localSet, err := shard.Open(local)
	if err != nil {
		t.Fatal(err)
	}
	defer localSet.Close()
	want := run(localSet)

	f := startFabric(t, local, nil)
	opener := testOpener()
	set, err := shard.OpenWith(f.manifest, shard.Options{Remote: opener})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if got := run(set); got != want {
		t.Errorf("empty-band session differs:\nlocal:\n%s\nremote:\n%s", want, got)
	}
	st := opener.Stats()
	if st.ChunkFetches != 0 {
		t.Errorf("%d chunk payloads crossed the wire for an empty predicate; predcount should have answered", st.ChunkFetches)
	}
	if st.RPCs == 0 {
		t.Error("no RPCs recorded; expected predcount probes")
	}
}

// TestRemotePartialsMatchLocal checks the statistics plane's mergeable
// bundles: the merged per-column partials of a remote set must agree
// with the local set's on every exact field and on the approximate
// summaries (same sketches, same histograms).
func TestRemotePartialsMatchLocal(t *testing.T) {
	tbl := datagen.Census(6_000, 11)
	local := writeShardedInputs(t, tbl, 3, 256)
	localSet, err := shard.Open(local)
	if err != nil {
		t.Fatal(err)
	}
	defer localSet.Close()
	f := startFabric(t, local, nil)
	remoteSet, err := shard.OpenWith(f.manifest, shard.Options{Remote: testOpener()})
	if err != nil {
		t.Fatal(err)
	}
	defer remoteSet.Close()

	want, err := localSet.Partials(2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := remoteSet.Partials(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("partials: %d local vs %d remote columns", len(want), len(got))
	}
	for ci := range want {
		w, g := want[ci], got[ci]
		if w.Rows != g.Rows || w.Nulls != g.Nulls || w.Count != g.Count ||
			w.Sum != g.Sum || w.HasMinMax != g.HasMinMax || w.Min != g.Min || w.Max != g.Max ||
			w.Falses != g.Falses || w.Trues != g.Trues {
			t.Errorf("column %d: exact fields differ: local %+v remote %+v", ci, w, g)
		}
		if (w.CatCounts == nil) != (g.CatCounts == nil) {
			t.Errorf("column %d: CatCounts presence differs", ci)
		} else {
			for c := range w.CatCounts {
				if w.CatCounts[c] != g.CatCounts[c] {
					t.Errorf("column %d code %d: count %d vs %d", ci, c, w.CatCounts[c], g.CatCounts[c])
				}
			}
		}
		if (w.Hist == nil) != (g.Hist == nil) {
			t.Errorf("column %d: histogram presence differs", ci)
		} else if w.Hist != nil {
			for b := range w.Hist.Counts {
				if w.Hist.Counts[b] != g.Hist.Counts[b] {
					t.Errorf("column %d bin %d: %d vs %d", ci, b, w.Hist.Counts[b], g.Hist.Counts[b])
				}
			}
			for e := range w.Hist.Edges {
				if w.Hist.Edges[e] != g.Hist.Edges[e] {
					t.Errorf("column %d edge %d: %g vs %g", ci, e, w.Hist.Edges[e], g.Hist.Edges[e])
				}
			}
		}
		if (w.Quantiles == nil) != (g.Quantiles == nil) {
			t.Errorf("column %d: sketch presence differs", ci)
		} else if w.Quantiles != nil {
			for _, qq := range []float64{0, 0.25, 0.5, 0.75, 1} {
				wv, gv := w.Quantiles.Quantile(qq), g.Quantiles.Quantile(qq)
				if wv != gv && !(math.IsNaN(wv) && math.IsNaN(gv)) {
					t.Errorf("column %d q%.2f: %g vs %g", ci, qq, wv, gv)
				}
			}
		}
	}
}

// TestRemotePredicateCount checks the statistics plane's per-predicate
// bitmap counts against a local scan of the same shard.
func TestRemotePredicateCount(t *testing.T) {
	tbl := datagen.Census(5_000, 5)
	local := writeShardedInputs(t, tbl, 2, 256)
	localSet, err := shard.Open(local)
	if err != nil {
		t.Fatal(err)
	}
	defer localSet.Close()
	f := startFabric(t, local, nil)
	remoteSet, err := shard.OpenWith(f.manifest, shard.Options{Remote: testOpener()})
	if err != nil {
		t.Fatal(err)
	}
	defer remoteSet.Close()

	preds := []query.Predicate{
		query.NewRange("age", 30, 50),
		query.NewIn("sex", "F"),
	}
	for pi, p := range preds {
		for i := 0; i < remoteSet.NumShards(); i++ {
			got, ok, err := remoteSet.RemotePredicateCount(context.Background(), i, p)
			if err != nil {
				t.Fatalf("pred %d shard %d: %v", pi, i, err)
			}
			if !ok {
				t.Fatalf("pred %d shard %d: expected a statistics-plane answer", pi, i)
			}
			view := localSet.ShardTable(i)
			sel := bitvec.NewFull(view.NumRows())
			if err := engine.EvalAndIntoOpts(view, query.New("census", p), sel, engine.ScanOptions{}); err != nil {
				t.Fatal(err)
			}
			if want := sel.Count(); got != want {
				t.Errorf("pred %d shard %d: remote count %d, local %d", pi, i, got, want)
			}
		}
	}
	// Local sets have no statistics plane.
	if _, ok, err := localSet.RemotePredicateCount(context.Background(), 0, preds[0]); err != nil || ok {
		t.Errorf("local set RemotePredicateCount = ok=%v err=%v, want ok=false", ok, err)
	}
}

// TestRemoteHealth exercises the liveness probe and the eager
// re-encode path of the chunk plane (a shard server over an eagerly
// decoded store must serve identical payloads).
func TestRemoteHealth(t *testing.T) {
	tbl := datagen.Census(3_000, 9)
	local := writeShardedInputs(t, tbl, 2, 256)
	f := startFabric(t, local, nil)
	set, err := shard.OpenWith(f.manifest, shard.Options{Remote: testOpener()})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	for i := 0; i < set.NumShards(); i++ {
		h := set.ShardHealth(i)
		if !h.Remote {
			t.Errorf("shard %d: expected remote", i)
		}
		if !h.Healthy || h.Err != nil {
			t.Errorf("shard %d: unhealthy: %v", i, h.Err)
		}
		if h.Latency <= 0 {
			t.Errorf("shard %d: no latency measured", i)
		}
	}
	if f.shardSrv[0].Stats().Requests == 0 {
		t.Error("shard server counted no requests")
	}
}

// TestEagerStoreChunkPlane checks that a shard served from an eagerly
// decoded store (the re-encode path of RawChunk) round-trips payloads
// identical to the lazy store's raw ranges.
func TestEagerStoreChunkPlane(t *testing.T) {
	tbl := datagen.Census(2_000, 13)
	dir := t.TempDir()
	path := filepath.Join(dir, "t.atl")
	if err := colstore.WriteFile(path, tbl, 256); err != nil {
		t.Fatal(err)
	}
	eager, err := colstore.OpenWith(path, colstore.Options{Mode: colstore.ModeEager})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(eager).Handler())
	defer ts.Close()

	opener := testOpener()
	be, err := opener.OpenShard([]string{ts.URL}, colstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	lazy, err := colstore.OpenWith(path, colstore.Options{Mode: colstore.ModeLazy})
	if err != nil {
		t.Fatal(err)
	}
	defer lazy.Close()
	src := be.Source()
	want := lazy.Source()
	for ci := 0; ci < tbl.NumCols(); ci++ {
		for k := 0; k < eager.NumChunks(); k++ {
			gp, _, err := src.FetchChunk(ci, k)
			if err != nil {
				t.Fatalf("remote chunk (%d,%d): %v", ci, k, err)
			}
			wp, _, err := want.FetchChunk(ci, k)
			if err != nil {
				t.Fatal(err)
			}
			if gp.Rows() != wp.Rows() {
				t.Fatalf("chunk (%d,%d): %d rows vs %d", ci, k, gp.Rows(), wp.Rows())
			}
			for i := 0; i < gp.Rows(); i++ {
				if gp.IsNull(i) != wp.IsNull(i) {
					t.Fatalf("chunk (%d,%d) row %d: null mismatch", ci, k, i)
				}
			}
		}
	}
}
