package remote

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/obsv"
	"repro/internal/query"
	"repro/internal/remote/chaos"
	"repro/internal/session"
	"repro/internal/shard"
)

// Query-lifecycle coverage of the fabric: caller cancellation must not
// strike circuit breakers, a hung replica must be escaped by the
// per-attempt budget without burning the whole query deadline, and a
// cancelled or deadlined exploration must release every goroutine it
// fanned out.

// settleGoroutines polls until the goroutine count returns to (about)
// the baseline — the leak assertion of every cancellation test. Slack
// covers runtime bookkeeping goroutines; the poll covers in-flight
// handlers still timing out.
func settleGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	deadline := time.Now().Add(8 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+5 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%s leaked goroutines: %d live, baseline %d\n%s", what, n, base, buf)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestBreakerNoStrikeOnCallerCancel: an RPC attempt that dies because
// OUR caller cancelled must not count as a breaker strike — the
// replica did nothing wrong. A genuine replica failure right after
// still trips (the exemption is narrow).
func TestBreakerNoStrikeOnCallerCancel(t *testing.T) {
	tbl := datagen.Census(2_000, 3)
	local := writeShardedInputs(t, tbl, 1, 256)
	rf := startReplicatedFabric(t, local, 2)
	opener := NewOpener(Options{
		Timeout: 5 * time.Second, RetryWait: time.Millisecond,
		BreakerThreshold: 1, BreakerCooldown: time.Minute,
	})
	be, err := opener.OpenShard(rf.urls[0], colstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	c := be.(*Client)
	p := query.NewRange("age", 30, 40)

	// Hang the primary, then cancel our own context mid-call.
	rf.injectors[0][0].SetFault(chaos.Delay)
	rf.injectors[0][0].SetDelay(2 * time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err = c.PredicateCount(ctx, p)
	if !obsv.IsCancellation(err) {
		t.Fatalf("cancelled call returned %v, want a cancellation", err)
	}
	if state := c.Replicas()[0].State; state != "healthy" {
		t.Errorf("primary state %q after caller cancellation, want healthy (no strike)", state)
	}
	if trips := opener.Stats().BreakerTrips; trips != 0 {
		t.Errorf("caller cancellation tripped %d breakers, want 0", trips)
	}

	// Contrast: a real failure (500s) with a live caller still strikes.
	rf.injectors[0][0].SetFault(chaos.Error5xx)
	if _, err := c.PredicateCount(context.Background(), p); err != nil {
		t.Fatalf("call failed despite a healthy replica: %v", err)
	}
	if state := c.Replicas()[0].State; state != "tripped" {
		t.Errorf("primary state %q after genuine 500s, want tripped", state)
	}
}

// TestHungReplicaFailoverWithinDeadline is the chaos acceptance test:
// one replica of a 2-shard × 2-replica fabric hangs mid-Explore. The
// per-attempt budget (half the remaining deadline) escapes the hang,
// the query fails over and completes byte-identical to the unsharded
// reference — within the deadline, with the goroutine count back at
// baseline.
func TestHungReplicaFailoverWithinDeadline(t *testing.T) {
	tbl := datagen.Census(8_000, 17)
	local := writeShardedInputs(t, tbl, 2, 256)
	rf := startReplicatedFabric(t, local, 2)
	q := query.New("census", query.NewRange("age", 20, 70))
	want := unshardedRef(t, tbl, q)

	opener := NewOpener(Options{Timeout: 10 * time.Second, RetryWait: time.Millisecond, BreakerCooldown: time.Minute})
	set, err := shard.OpenWith(rf.manifest, shard.Options{Remote: opener})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	opts := core.DefaultOptions()
	opts.Parallelism = 2
	cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(opts.Parallelism))
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	// Shard 1's primary hangs on everything, far past the query deadline.
	rf.injectors[1][0].SetFault(chaos.Delay)
	rf.injectors[1][0].SetDelay(3 * time.Second)

	const deadline = 2 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	res, err := cart.ExploreCtx(ctx, q)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("exploration failed despite a live replica: %v (after %s)", err, elapsed)
	}
	if elapsed > deadline+500*time.Millisecond {
		t.Errorf("exploration took %s, more than deadline+500ms", elapsed)
	}
	if got := renderResult(res); got != want {
		t.Errorf("hung-replica failover result differs from unsharded:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if opener.Stats().Failovers == 0 {
		t.Error("no failover recorded while a replica hung")
	}
	settleGoroutines(t, base, "hung-replica failover Explore")
}

// TestAllReplicasHungDeadlineNamesShard: when every replica of a shard
// hangs, the deadlined Explore must return — within deadline + 500ms —
// an error that wraps context.DeadlineExceeded and names the shard,
// and every fanned-out goroutine must drain.
func TestAllReplicasHungDeadlineNamesShard(t *testing.T) {
	tbl := datagen.Census(4_000, 29)
	local := writeShardedInputs(t, tbl, 2, 256)
	rf := startReplicatedFabric(t, local, 2)
	opener := NewOpener(Options{Timeout: 10 * time.Second, RetryWait: time.Millisecond})
	set, err := shard.OpenWith(rf.manifest, shard.Options{Remote: opener})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	opts := core.DefaultOptions()
	opts.Parallelism = 2
	cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(opts.Parallelism))
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for _, inj := range rf.injectors[0] {
		inj.SetFault(chaos.Delay)
		inj.SetDelay(3 * time.Second)
	}
	const deadline = 800 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	res, err := cart.ExploreCtx(ctx, query.New("census", query.NewRange("age", 18, 80)))
	elapsed := time.Since(start)
	if res != nil {
		t.Error("got a result from a fully hung shard; partial answers must not be served")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if elapsed > deadline+500*time.Millisecond {
		t.Errorf("deadlined exploration returned after %s, more than deadline+500ms", elapsed)
	}
	assertNamedShardError(t, err, rf.urls[0][0])
	settleGoroutines(t, base, "all-replicas-hung Explore")
}

// TestCancelledExploreReleasesGoroutines: a caller abandoning an
// Explore mid-run gets a cancellation error and the fan-out — cut
// workers, fabric RPCs, chunk loads — unwinds to baseline.
func TestCancelledExploreReleasesGoroutines(t *testing.T) {
	tbl := datagen.Census(8_000, 43)
	local := writeShardedInputs(t, tbl, 2, 256)
	rf := startReplicatedFabric(t, local, 2)
	opener := NewOpener(Options{Timeout: 10 * time.Second, RetryWait: time.Millisecond})
	set, err := shard.OpenWith(rf.manifest, shard.Options{Remote: opener})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	opts := core.DefaultOptions()
	opts.Parallelism = 2
	cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(opts.Parallelism))
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	// Slow every request so the exploration is mid-flight at cancel time.
	for _, shardInjs := range rf.injectors {
		for _, inj := range shardInjs {
			inj.SetFault(chaos.Delay)
			inj.SetDelay(150 * time.Millisecond)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(75 * time.Millisecond)
		cancel()
	}()
	res, err := cart.ExploreCtx(ctx, query.New("census", query.NewRange("age", 20, 70)))
	if err == nil {
		t.Fatalf("exploration completed despite cancellation (res=%v)", res != nil)
	}
	if !obsv.IsCancellation(err) {
		t.Fatalf("cancelled Explore returned %v, want a cancellation", err)
	}
	settleGoroutines(t, base, "cancelled Explore")
}

// TestCancelledDrillReleasesGoroutines: same assertion for a session
// drill-down — the stateful path (per-shard base assembly, predicate
// bitmaps) unwinds on cancellation too.
func TestCancelledDrillReleasesGoroutines(t *testing.T) {
	tbl := datagen.Census(8_000, 47)
	local := writeShardedInputs(t, tbl, 2, 256)
	rf := startReplicatedFabric(t, local, 2)
	opener := NewOpener(Options{Timeout: 10 * time.Second, RetryWait: time.Millisecond})
	set, err := shard.OpenWith(rf.manifest, shard.Options{Remote: opener})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	opts := core.DefaultOptions()
	opts.Parallelism = 2
	cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(opts.Parallelism))
	if err != nil {
		t.Fatal(err)
	}
	sess := session.NewSharded(cart, set)
	node, err := sess.Explore(query.New("census", query.NewRange("age", 25, 60)))
	if err != nil {
		t.Fatal(err)
	}
	if len(node.Result.Maps) == 0 || len(node.Result.Maps[0].Regions) == 0 {
		t.Skip("no drillable region in the warm result")
	}
	base := runtime.NumGoroutine()
	for _, shardInjs := range rf.injectors {
		for _, inj := range shardInjs {
			inj.SetFault(chaos.Delay)
			inj.SetDelay(150 * time.Millisecond)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := sess.DrillDownCtx(ctx, 0, 0); err == nil {
		t.Log("drill completed before the cancellation landed")
	} else if !obsv.IsCancellation(err) {
		t.Fatalf("cancelled drill returned %v, want a cancellation", err)
	}
	settleGoroutines(t, base, "cancelled drill-down")
}
