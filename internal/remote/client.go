package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/obsv"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/storage"
)

// ShardError is the named per-shard failure of the fabric: every error
// a Client returns is wrapped in one, so an exploration that dies
// because a remote shard timed out, truncated a payload or served
// corrupt bytes says WHICH shard and WHAT operation — never a bare
// transport error, and never a silently partial answer.
type ShardError struct {
	// Location is the shard's URL as the manifest names it.
	Location string
	// Op is the failing operation ("chunk", "values", "meta", ...).
	Op string
	// RequestID is the query request id the failing RPC belonged to
	// ("" when the request carried none) — the join key between a
	// client-side error and the server's slow-query/error log lines.
	RequestID string
	// Err is the final underlying failure (after retries).
	Err error
}

func (e *ShardError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("remote shard %s: %s: %v (rid %s)", e.Location, e.Op, e.Err, e.RequestID)
	}
	return fmt.Sprintf("remote shard %s: %s: %v", e.Location, e.Op, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// httpStatusError is a non-200 answer; statuses below 500 are not
// retried (the request itself is wrong).
type httpStatusError struct {
	status int
	msg    string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.status, e.msg)
}

// counters aggregates fabric traffic across every client of one Opener.
type counters struct {
	rpcs         atomic.Int64
	bytesIn      atomic.Int64
	chunkFetches atomic.Int64
	retries      atomic.Int64
	failovers    atomic.Int64
	breakerTrips atomic.Int64
}

// Client speaks the fabric protocol to one shard — a replica set of
// servers holding the same immutable shard file. It implements
// shard.Backend (+ StatBackend, PredBitsBackend, HealthBackend,
// IOBackend, ReplicaBackend) and storage.ChunkSource/ChunkPrefetcher,
// so a shard.Set routes through it exactly as it routes through a
// local file. Requests share a pooled transport, are bounded in flight
// per shard, and every fetched chunk is CRC-checked before it is
// decoded. Failures rotate to the next healthy replica (see
// replica.go); retries against the same replica back off exponentially
// with jitter.
type Client struct {
	primary string     // manifest's primary location — names this shard in errors
	reps    []*replica // dial order: primary first, then replicas
	cur     atomic.Int32
	hc      *http.Client
	sem     chan struct{}

	retries          int
	retryWait        time.Duration
	maxRetryWait     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration

	cache *colstore.ChunkCache
	stats *counters // opener-wide aggregates
	// Per-shard counters behind IOStats (a Set sums its shards', so
	// these must not alias the opener-wide totals).
	ownBytes  atomic.Int64
	ownChunks atomic.Int64

	// Shard snapshot, fetched at open.
	table     string
	rows      int
	chunkSize int
	version   byte
	schema    *storage.Schema
	zones     [][]storage.ZoneMap

	// dicts memoizes string dictionaries per column, each behind its own
	// lock so first touches of different columns fetch concurrently; a
	// failed fetch is not cached (the next touch retries).
	dicts []dictSlot

	// Batch statistics cache: the first statistics-plane demand fetches
	// every attribute's stats in ONE round trip (POST batchstats) and
	// answers later calls from memory — the table is immutable, so the
	// answers never go stale. batchOff remembers a server without the
	// endpoint (404); per-attribute calls then carry the load, so old
	// servers keep working.
	statsMu   sync.Mutex
	batchOff  bool
	numStats  map[string][]float64
	catStats  map[string]catCountsDTO
	boolStats map[string]boolCountsDTO

	prefetching atomic.Int64
	closed      atomic.Bool
}

type dictSlot struct {
	mu   sync.Mutex
	vals []string
	done bool
}

// initCtx fetches and validates the shard's metadata and zone maps.
// The context is the caller's: when a query forces a deferred shard
// open, the open's own RPCs are traced and billed to that query.
func (c *Client) initCtx(ctx context.Context) error {
	data, _, err := c.do(ctx, "meta", http.MethodGet, "/shard/v1/meta", nil, nil, nil)
	if err != nil {
		return err
	}
	var meta metaDTO
	if err := json.Unmarshal(data, &meta); err != nil {
		return &ShardError{Location: c.primary, Op: "meta", Err: err}
	}
	if meta.Rows < 0 || meta.ChunkSize <= 0 || meta.ChunkSize%64 != 0 {
		return &ShardError{Location: c.primary, Op: "meta", Err: fmt.Errorf("implausible shape rows=%d chunkSize=%d", meta.Rows, meta.ChunkSize)}
	}
	if meta.Version < 1 || meta.Version > int(colstore.Version) {
		return &ShardError{Location: c.primary, Op: "meta", Err: fmt.Errorf("unsupported chunk encoding version %d (this client handles 1..%d)", meta.Version, colstore.Version)}
	}
	fields := make([]storage.Field, len(meta.Columns))
	for i, col := range meta.Columns {
		typ, err := parseTypeName(col.Type)
		if err != nil {
			return &ShardError{Location: c.primary, Op: "meta", Err: err}
		}
		fields[i] = storage.Field{Name: col.Name, Type: typ}
	}
	schema, err := storage.NewSchema(fields...)
	if err != nil {
		return &ShardError{Location: c.primary, Op: "meta", Err: err}
	}
	c.table, c.rows, c.chunkSize = meta.Table, meta.Rows, meta.ChunkSize
	c.version = byte(meta.Version)
	c.schema = schema
	c.dicts = make([]dictSlot, len(fields))

	data, _, err = c.do(ctx, "zones", http.MethodGet, "/shard/v1/zones", nil, nil, nil)
	if err != nil {
		return err
	}
	var zdto zonesDTO
	if err := json.Unmarshal(data, &zdto); err != nil {
		return &ShardError{Location: c.primary, Op: "zones", Err: err}
	}
	numChunks := c.numChunks()
	if len(zdto.Zones) != len(fields) {
		return &ShardError{Location: c.primary, Op: "zones", Err: fmt.Errorf("%d zone columns for %d fields", len(zdto.Zones), len(fields))}
	}
	zones := make([][]storage.ZoneMap, len(fields))
	for ci, col := range zdto.Zones {
		if len(col) != numChunks {
			return &ShardError{Location: c.primary, Op: "zones", Err: fmt.Errorf("column %d has %d zone maps for %d chunks", ci, len(col), numChunks)}
		}
		zones[ci] = make([]storage.ZoneMap, numChunks)
		for k, d := range col {
			zm, err := zoneFromDTO(d)
			if err != nil {
				return &ShardError{Location: c.primary, Op: "zones", Err: err}
			}
			zones[ci][k] = zm
		}
	}
	c.zones = zones
	return nil
}

// warmReplicas establishes a pooled connection to every non-primary
// replica with a best-effort asynchronous health ping (bypassing do(),
// so breakers and traffic counters see nothing). Failover is then a
// connection-pool hit instead of a fresh dial racing the failed
// connection's teardown — a cold dial issued while an aborted
// connection is being torn down can lose a segment and eat the
// kernel's minimum retransmission timeout (~200ms) before the replica
// answers.
func (c *Client) warmReplicas() {
	for _, r := range c.reps[1:] {
		go func(url string) {
			resp, err := c.hc.Get(url + "/shard/v1/health")
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(r.url)
	}
}

func (c *Client) numChunks() int {
	if c.rows == 0 {
		return 0
	}
	return (c.rows + c.chunkSize - 1) / c.chunkSize
}

// ---- transport ----

// do runs one fabric request with bounded in-flight admission,
// replica rotation and per-shard retries. check validates a successful
// response (length and CRC tests); its failures are retried like
// transport errors, because a truncated or corrupted body may be
// transient. A failed attempt strikes that replica's circuit breaker
// and the next attempt rotates forward to the next admissible replica
// — sleeping (jittered exponential backoff) only when it lands on the
// same replica again, because waiting is pointless when a different
// healthy peer can answer now. The final error is a *ShardError naming
// this shard by its primary location (and the request id, when the
// context carries one).
//
// When ctx carries a trace span, the whole operation records under one
// "rpc <op>" span with one child per attempt; the server's own span
// subtree comes back in the response headers and is grafted under the
// attempt that succeeded. Untraced contexts skip all of it.
func (c *Client) do(ctx context.Context, op, method, path string, q url.Values, body []byte, check func([]byte, http.Header) error) ([]byte, http.Header, error) {
	rid := obsv.RequestIDFrom(ctx)
	if c.closed.Load() {
		return nil, nil, &ShardError{Location: c.primary, Op: op, RequestID: rid, Err: errors.New("client closed")}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, nil, &ShardError{Location: c.primary, Op: op, RequestID: rid, Err: obsv.Cancelled(ctx, "fabric.admit")}
	}
	defer func() { <-c.sem }()
	rctx, rsp := obsv.StartSpan(ctx, "rpc "+op)
	defer rsp.End()
	rsp.SetAttr("shard", c.primary)
	var lastErr error
	// At least one attempt per replica, plus the configured retries:
	// Retries only bounds extra attempts, it never hides a live replica.
	attempts := c.retries + len(c.reps)
	start := int(c.cur.Load())
	prev, sameStreak := -1, 0
	for attempt := 0; attempt < attempts; attempt++ {
		if ctx.Err() != nil {
			// The caller is gone or out of time: stop retrying. Whatever
			// the last replica did, the cause here is ours — no strike.
			return nil, nil, &ShardError{Location: c.primary, Op: op, RequestID: rid, Err: obsv.Cancelled(ctx, "fabric.rpc")}
		}
		i := c.pick(start, time.Now())
		r := c.reps[i]
		if attempt > 0 {
			c.stats.retries.Add(1)
			if i != prev {
				c.stats.failovers.Add(1)
				sameStreak = 0
			} else {
				sameStreak++
				if !sleepCtx(ctx, backoffJitter(c.retryWait, sameStreak, c.maxRetryWait)) {
					return nil, nil, &ShardError{Location: c.primary, Op: op, RequestID: rid, Err: obsv.Cancelled(ctx, "fabric.backoff")}
				}
			}
		}
		prev = i
		actx, asp := obsv.StartSpan(rctx, "attempt")
		asp.SetAttr("replica", r.url)
		// Per-attempt budget: when the caller's deadline leaves room for
		// more attempts, cap this one at half the remaining budget, so a
		// hung replica is escaped by the attempt timeout with budget left
		// to fail over instead of burning the whole query deadline.
		cancelAttempt := func() {}
		if dl, ok := ctx.Deadline(); ok && attempt < attempts-1 {
			if remaining := time.Until(dl); remaining > 2*minAttemptBudget {
				var cancel context.CancelFunc
				actx, cancel = context.WithTimeout(actx, remaining/2)
				cancelAttempt = cancel
			}
		}
		began := time.Now()
		data, hdr, err := c.doOnce(actx, r.url, method, path, q, body, rid)
		if err == nil && check != nil {
			err = check(data, hdr)
		}
		cancelAttempt()
		elapsed := time.Since(began)
		if err == nil {
			r.onSuccess(elapsed)
			asp.End()
			c.cur.Store(int32(i))
			return data, hdr, nil
		}
		lastErr = err
		asp.SetAttr("error", err.Error())
		var hs *httpStatusError
		if errors.As(err, &hs) && hs.status < 500 {
			// The request itself is wrong; no replica can fix it, and the
			// replica answered — no breaker strike.
			asp.End()
			break
		}
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			// The attempt died of OUR caller's cancellation (or deadline),
			// not the replica's: an impatient client must not trip a
			// healthy replica's breaker. A per-attempt timeout expiring
			// while the caller is still live is NOT this case — that one
			// strikes below, because the replica really did hang.
			asp.End()
			return nil, nil, &ShardError{Location: c.primary, Op: op, RequestID: rid, Err: obsv.Cancelled(ctx, "fabric.rpc")}
		}
		// The time burned on a failed attempt — timeout included — is
		// charged to the replica that failed, so ShardHealth latencies
		// stay honest about what failovers actually cost.
		if r.onFailure(err, c.breakerThreshold, c.breakerCooldown, time.Now(), elapsed) {
			c.stats.breakerTrips.Add(1)
			asp.SetAttr("breakerTripped", true)
		}
		asp.End()
		start = i + 1 // rotate past the replica that just failed
	}
	return nil, nil, &ShardError{Location: c.primary, Op: op, RequestID: rid, Err: lastErr}
}

// minAttemptBudget is the smallest remaining-deadline slice worth
// splitting for failover: below twice this, the attempt just rides the
// caller's own deadline.
const minAttemptBudget = 25 * time.Millisecond

// sleepCtx sleeps for d unless ctx is done first; it reports whether
// the full sleep happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// pick chooses the replica for the next attempt: the first breaker-
// admissible replica scanning forward from start (sticky on the last
// replica that answered, so a healthy fabric never flaps). When every
// breaker is tripped and cooling, the one reopening soonest is chosen
// — a late answer beats none.
func (c *Client) pick(start int, now time.Time) int {
	n := len(c.reps)
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if c.reps[i].allow(now) {
			return i
		}
	}
	best, bestAt := start%n, time.Time{}
	if best < 0 {
		best += n
	}
	for i, r := range c.reps {
		at := r.reopenTime()
		if bestAt.IsZero() || at.Before(bestAt) {
			best, bestAt = i, at
		}
	}
	return best
}

// Replicas implements shard.ReplicaBackend: each replica's breaker
// state for ShardHealth and GET /api/shards.
func (c *Client) Replicas() []shard.ReplicaHealth {
	now := time.Now()
	out := make([]shard.ReplicaHealth, len(c.reps))
	for i, r := range c.reps {
		state, fails, attempts, failures, lastErr, lat := r.health(now)
		out[i] = shard.ReplicaHealth{URL: r.url, State: state, Fails: fails, Attempts: attempts, Failures: failures, Err: lastErr, Latency: lat}
	}
	return out
}

// doOnce runs one attempt. Besides the opener-wide and per-shard
// counters, the attempt bills the context's resource ledger at the very
// same sites: one RPC, and the response body both as wire traffic
// (fabric plane) and as bytes read (store plane — ownBytes is what this
// shard's IOStats reports as BytesRead).
func (c *Client) doOnce(ctx context.Context, base, method, path string, q url.Values, body []byte, rid string) ([]byte, http.Header, error) {
	u := base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	sp := obsv.SpanFrom(ctx)
	if sp != nil {
		req.Header.Set(headerTrace, sp.TraceHeaderValue())
	}
	if rid != "" {
		req.Header.Set(headerRequestID, rid)
	}
	if dl, ok := ctx.Deadline(); ok {
		// Ship the remaining budget (milliseconds) so the server aborts
		// statcompute/chunk work its caller will never read.
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set(headerDeadline, strconv.FormatInt(ms, 10))
		}
	}
	led := obsv.LedgerFrom(ctx)
	c.stats.rpcs.Add(1)
	led.RPC()
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	c.stats.bytesIn.Add(int64(len(data)))
	c.ownBytes.Add(int64(len(data)))
	led.WireBytes(int64(len(data)))
	led.ReadBytes(int64(len(data)))
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, &httpStatusError{status: resp.StatusCode, msg: strings.TrimSpace(string(data))}
	}
	if sp != nil {
		if enc := resp.Header.Get(headerSpans); enc != "" {
			if remote, err := obsv.DecodeSpanTree(enc); err == nil {
				sp.Graft(remote)
			}
		}
	}
	return data, resp.Header, nil
}

// getJSON runs a GET and decodes its JSON answer.
func (c *Client) getJSON(ctx context.Context, op, path string, q url.Values, into any) error {
	data, _, err := c.do(ctx, op, http.MethodGet, path, q, nil, nil)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, into); err != nil {
		return &ShardError{Location: c.primary, Op: op, RequestID: obsv.RequestIDFrom(ctx), Err: err}
	}
	return nil
}

// postJSON runs a POST with a JSON body and decodes the JSON answer.
func (c *Client) postJSON(ctx context.Context, op, path string, reqBody, into any) error {
	body, err := json.Marshal(reqBody)
	if err != nil {
		return &ShardError{Location: c.primary, Op: op, Err: err}
	}
	data, _, err := c.do(ctx, op, http.MethodPost, path, nil, body, nil)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, into); err != nil {
		return &ShardError{Location: c.primary, Op: op, RequestID: obsv.RequestIDFrom(ctx), Err: err}
	}
	return nil
}

// ---- shard.Backend ----

// Meta implements shard.Backend.
func (c *Client) Meta() shard.BackendMeta {
	return shard.BackendMeta{Table: c.table, Rows: c.rows, ChunkSize: c.chunkSize, Schema: c.schema}
}

// Zones implements shard.Backend.
func (c *Client) Zones() [][]storage.ZoneMap { return c.zones }

// Dicts implements shard.Backend, fetching each string dictionary once
// (per-column locks, so different columns' first touches overlap).
func (c *Client) Dicts(ci int) ([]string, error) {
	return c.dictsCtx(context.Background(), ci)
}

// DictsCtx implements shard.CtxDictBackend — Dicts with the caller's
// context riding into a first-touch fetch.
func (c *Client) DictsCtx(ctx context.Context, ci int) ([]string, error) {
	return c.dictsCtx(ctx, ci)
}

// dictsCtx is Dicts with the caller's context riding into a first-touch
// fetch — so a chunk load's implied dictionary round trip is traced and
// billed with the query that caused it.
func (c *Client) dictsCtx(ctx context.Context, ci int) ([]string, error) {
	if ci < 0 || ci >= c.schema.NumFields() {
		return nil, &ShardError{Location: c.primary, Op: "dict", Err: fmt.Errorf("column %d out of range", ci)}
	}
	if c.schema.Field(ci).Type != storage.String {
		return nil, nil
	}
	slot := &c.dicts[ci]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.done {
		return slot.vals, nil
	}
	if vals, ok := c.cachedBatchDict(ci); ok {
		// A batch stats fetch already carried this dictionary (catcounts
		// answers include it); no separate dict round trip needed.
		slot.vals, slot.done = vals, true
		return slot.vals, nil
	}
	var dto dictDTO
	if err := c.getJSON(ctx, "dict", "/shard/v1/dict", url.Values{"col": {strconv.Itoa(ci)}}, &dto); err != nil {
		return nil, err
	}
	if dto.Values == nil {
		dto.Values = []string{}
	}
	slot.vals, slot.done = dto.Values, true
	return slot.vals, nil
}

// Source implements shard.Backend: the client is its own chunk source.
func (c *Client) Source() storage.ChunkSource { return c }

// Close implements shard.Backend: drops this shard's cached payloads.
// The pooled transport belongs to the Opener and stays usable.
func (c *Client) Close() error {
	if !c.closed.Swap(true) {
		c.cache.Drop(c)
	}
	return nil
}

// IOStats implements shard.IOBackend: THIS shard's bytes over the wire
// and chunk fetches, so /api/stats and the bench counters see remote
// I/O the way they see file I/O (a Set sums these across its shards).
func (c *Client) IOStats() colstore.IOStats {
	return colstore.IOStats{
		BytesRead:     c.ownBytes.Load(),
		ChunksDecoded: c.ownChunks.Load(),
	}
}

// ---- chunk plane ----

// FetchChunk implements storage.ChunkSource: cache lookup, then one
// RPC + CRC check + decode on a miss. Payload contents are identical to
// a local open of the same shard file — the wire carries the file's own
// chunk encoding.
func (c *Client) FetchChunk(ci, k int) (*storage.ChunkPayload, bool, error) {
	return c.FetchChunkCtx(context.Background(), ci, k)
}

// FetchChunkCtx implements storage.CtxChunkSource: FetchChunk with the
// request context riding into the RPC, so a traced exploration sees
// which phase pulled which chunk over the wire.
func (c *Client) FetchChunkCtx(ctx context.Context, ci, k int) (*storage.ChunkPayload, bool, error) {
	if ci < 0 || ci >= c.schema.NumFields() || k < 0 || k >= c.numChunks() {
		return nil, false, &ShardError{Location: c.primary, Op: "chunk", Err: fmt.Errorf("chunk (%d,%d) out of range", ci, k)}
	}
	return c.cache.GetCtx(ctx, c, ci, k, func() (*storage.ChunkPayload, error) {
		return c.loadChunk(ctx, ci, k)
	})
}

// loadChunk is the cache-miss path of FetchChunk.
func (c *Client) loadChunk(ctx context.Context, ci, k int) (*storage.ChunkPayload, error) {
	dictLen := 0
	if c.schema.Field(ci).Type == storage.String {
		dict, err := c.dictsCtx(ctx, ci)
		if err != nil {
			return nil, err
		}
		dictLen = len(dict)
	}
	check := func(data []byte, hdr http.Header) error {
		if lenStr := hdr.Get(headerChunkLen); lenStr != "" {
			if want, err := strconv.Atoi(lenStr); err == nil && want != len(data) {
				return fmt.Errorf("truncated chunk (%d,%d): got %d of %d bytes", ci, k, len(data), want)
			}
		}
		crcStr := hdr.Get(headerChunkCRC)
		if crcStr == "" {
			return fmt.Errorf("chunk (%d,%d): missing CRC header", ci, k)
		}
		want, err := strconv.ParseUint(crcStr, 16, 32)
		if err != nil {
			return fmt.Errorf("chunk (%d,%d): bad CRC header %q", ci, k, crcStr)
		}
		if got := crc32.ChecksumIEEE(data); got != uint32(want) {
			return fmt.Errorf("chunk (%d,%d): checksum mismatch (header %08x, computed %08x)", ci, k, want, got)
		}
		return nil
	}
	q := url.Values{"col": {strconv.Itoa(ci)}, "chunk": {strconv.Itoa(k)}}
	data, _, err := c.do(ctx, "chunk", http.MethodGet, "/shard/v1/chunk", q, nil, check)
	if err != nil {
		return nil, err
	}
	chunkRows := c.chunkSize
	if hi := (k + 1) * c.chunkSize; hi > c.rows {
		chunkRows = c.rows - k*c.chunkSize
	}
	p, err := colstore.DecodeChunk(data, c.schema.Field(ci), dictLen, chunkRows, k, c.version)
	if err != nil {
		return nil, &ShardError{Location: c.primary, Op: "chunk", Err: fmt.Errorf("chunk (%d,%d): %w", ci, k, err)}
	}
	c.stats.chunkFetches.Add(1)
	c.ownChunks.Add(1)
	obsv.LedgerFrom(ctx).StoreChunkDecoded()
	return p, nil
}

// maxClientPrefetch bounds a shard's concurrent speculative fetches.
const maxClientPrefetch = 2

// PrefetchChunk implements storage.ChunkPrefetcher: an asynchronous,
// single-flight, eviction-aware fetch of the chunk a sequential scan
// will touch next — this is where the fabric hides its round-trip
// latency. Skipped when the chunk is resident, the cache has no room,
// or enough prefetches are already in flight.
func (c *Client) PrefetchChunk(ci, k int) {
	c.PrefetchChunkCtx(nil, ci, k)
}

// PrefetchChunkCtx implements storage.CtxChunkPrefetcher: the
// speculative RPC carries the request's values (resource ledger,
// request ID) detached from its cancellation, so the fetch it hides
// latency for is the query it bills.
func (c *Client) PrefetchChunkCtx(ctx context.Context, ci, k int) {
	if c.closed.Load() || ci < 0 || ci >= c.schema.NumFields() || k < 0 || k >= c.numChunks() {
		return
	}
	if c.cache.Contains(c, ci, k) {
		return
	}
	chunkRows := c.chunkSize
	if hi := (k + 1) * c.chunkSize; hi > c.rows {
		chunkRows = c.rows - k*c.chunkSize
	}
	if !c.cache.HasRoom(int64(chunkRows) * 8) {
		return
	}
	if c.prefetching.Add(1) > maxClientPrefetch {
		c.prefetching.Add(-1)
		return
	}
	if ctx == nil {
		ctx = context.Background()
	} else {
		// Detach from cancellation and drop the trace span: the flight may
		// outlive the request, and a span ended after its parent would
		// malform the exported tree. The ledger and request ID stay.
		ctx = obsv.WithSpan(context.WithoutCancel(ctx), nil)
	}
	go func() {
		defer c.prefetching.Add(-1)
		_, _, _ = c.FetchChunkCtx(ctx, ci, k)
	}()
}

// ---- statistics plane (shard.StatBackend) ----

// loadBatchStats fetches EVERY attribute's statistics in one round
// trip on the first statistics-plane demand and reports whether the
// cache is usable. Servers without the endpoint (old deployments
// answer 404) or serving an undecodable body turn the batch off for
// this client; callers then fall back to the per-attribute endpoints,
// which also own error reporting — a dead batch plane never masks a
// live per-attribute answer.
func (c *Client) loadBatchStats(ctx context.Context) bool {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if c.numStats != nil {
		return true
	}
	if c.batchOff {
		return false
	}
	req := batchReqDTO{Attrs: make([]string, c.schema.NumFields())}
	for i := range req.Attrs {
		req.Attrs[i] = c.schema.Field(i).Name
	}
	body, err := json.Marshal(req)
	if err != nil {
		c.batchOff = true
		return false
	}
	check := func(data []byte, _ http.Header) error {
		_, _, _, _, err := c.parseBatchStats(data)
		return err
	}
	data, _, err := c.do(ctx, "batchstats", http.MethodPost, "/shard/v1/batchstats", nil, body, check)
	if err != nil {
		c.batchOff = true
		return false
	}
	num, cat, boolc, _, err := c.parseBatchStats(data)
	if err != nil {
		c.batchOff = true
		return false
	}
	c.numStats, c.catStats, c.boolStats = num, cat, boolc
	return true
}

// parseBatchStats decodes and validates a batchstats body (it doubles
// as the retryable response check of the batch RPC).
func (c *Client) parseBatchStats(data []byte) (map[string][]float64, map[string]catCountsDTO, map[string]boolCountsDTO, int, error) {
	hdr, blob, err := decodeBatch(data)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	num := make(map[string][]float64)
	cat := make(map[string]catCountsDTO)
	boolc := make(map[string]boolCountsDTO)
	for _, st := range hdr.Stats {
		switch st.Kind {
		case "numeric":
			if st.Off < 0 || st.Count < 0 || st.Off+st.Count*8 > len(blob) {
				return nil, nil, nil, 0, fmt.Errorf("batch stat %q: %d values at offset %d overflow %d blob bytes", st.Attr, st.Count, st.Off, len(blob))
			}
			vals, err := decodeFloats(blob[st.Off : st.Off+st.Count*8])
			if err != nil {
				return nil, nil, nil, 0, err
			}
			num[st.Attr] = vals
		case "cat":
			if len(st.Dict) != len(st.Counts) {
				return nil, nil, nil, 0, fmt.Errorf("batch stat %q: %d dictionary entries with %d counts", st.Attr, len(st.Dict), len(st.Counts))
			}
			d := st.Dict
			if d == nil {
				d = []string{}
			}
			cat[st.Attr] = catCountsDTO{Dict: d, Counts: st.Counts}
		case "bool":
			boolc[st.Attr] = boolCountsDTO{Falses: st.Falses, Trues: st.Trues}
		default:
			return nil, nil, nil, 0, fmt.Errorf("batch stat %q: unknown kind %q", st.Attr, st.Kind)
		}
	}
	return num, cat, boolc, len(hdr.Stats), nil
}

// batchNumeric answers NumericValues from the batch cache. The slice
// is copied out: callers sort their copy in place, and the cached row
// order must survive for the next exploration's sketch replay.
func (c *Client) batchNumeric(ctx context.Context, attr string) ([]float64, bool) {
	if !c.loadBatchStats(ctx) {
		return nil, false
	}
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	vals, ok := c.numStats[attr]
	if !ok {
		return nil, false
	}
	out := make([]float64, len(vals))
	copy(out, vals)
	return out, true
}

// batchCat answers CategoryCounts from the batch cache (counts copied;
// the shared dictionary is read-only by contract).
func (c *Client) batchCat(ctx context.Context, attr string) ([]string, []int, bool) {
	if !c.loadBatchStats(ctx) {
		return nil, nil, false
	}
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	dto, ok := c.catStats[attr]
	if !ok {
		return nil, nil, false
	}
	counts := make([]int, len(dto.Counts))
	copy(counts, dto.Counts)
	return dto.Dict, counts, true
}

// batchBool answers BoolCounts from the batch cache.
func (c *Client) batchBool(ctx context.Context, attr string) (int, int, bool) {
	if !c.loadBatchStats(ctx) {
		return 0, 0, false
	}
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	dto, ok := c.boolStats[attr]
	if !ok {
		return 0, 0, false
	}
	return dto.Falses, dto.Trues, true
}

// cachedBatchDict returns column ci's dictionary if a batch fetch
// already brought it over — without triggering one: the dictionary
// plane must stay cheap for opens and selective scans that never touch
// statistics.
func (c *Client) cachedBatchDict(ci int) ([]string, bool) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if c.numStats == nil {
		return nil, false
	}
	dto, ok := c.catStats[c.schema.Field(ci).Name]
	if !ok {
		return nil, false
	}
	return dto.Dict, true
}

// NumericValues implements shard.StatBackend: the shard's non-NULL
// values in row order, as one binary stream.
func (c *Client) NumericValues(ctx context.Context, attr string) ([]float64, error) {
	if vals, ok := c.batchNumeric(ctx, attr); ok {
		return vals, nil
	}
	check := func(data []byte, hdr http.Header) error {
		if cs := hdr.Get(headerCount); cs != "" {
			if want, err := strconv.Atoi(cs); err == nil && want*8 != len(data) {
				return fmt.Errorf("truncated value stream for %q: got %d of %d bytes", attr, len(data), want*8)
			}
		}
		if len(data)%8 != 0 {
			return fmt.Errorf("value stream for %q: %d bytes is not a multiple of 8", attr, len(data))
		}
		return nil
	}
	data, _, err := c.do(ctx, "values", http.MethodGet, "/shard/v1/values", url.Values{"attr": {attr}}, nil, check)
	if err != nil {
		return nil, err
	}
	vals, err := decodeFloats(data)
	if err != nil {
		return nil, &ShardError{Location: c.primary, Op: "values", Err: err}
	}
	return vals, nil
}

// CategoryCounts implements shard.StatBackend (local dictionary space).
func (c *Client) CategoryCounts(ctx context.Context, attr string) ([]string, []int, error) {
	if dict, counts, ok := c.batchCat(ctx, attr); ok {
		return dict, counts, nil
	}
	var dto catCountsDTO
	if err := c.getJSON(ctx, "catcounts", "/shard/v1/catcounts", url.Values{"attr": {attr}}, &dto); err != nil {
		return nil, nil, err
	}
	if len(dto.Dict) != len(dto.Counts) {
		return nil, nil, &ShardError{Location: c.primary, Op: "catcounts", Err: fmt.Errorf("%d dictionary entries with %d counts", len(dto.Dict), len(dto.Counts))}
	}
	return dto.Dict, dto.Counts, nil
}

// BoolCounts implements shard.StatBackend.
func (c *Client) BoolCounts(ctx context.Context, attr string) (int, int, error) {
	if falses, trues, ok := c.batchBool(ctx, attr); ok {
		return falses, trues, nil
	}
	var dto boolCountsDTO
	if err := c.getJSON(ctx, "boolcounts", "/shard/v1/boolcounts", url.Values{"attr": {attr}}, &dto); err != nil {
		return 0, 0, err
	}
	return dto.Falses, dto.Trues, nil
}

// ColumnPartials implements shard.StatBackend: every requested column's
// mergeable bundle in one round trip.
func (c *Client) ColumnPartials(ctx context.Context, specs []shard.PartialSpec) ([]*shard.ColumnPartial, error) {
	req := partialsReqDTO{Specs: make([]partialSpecDTO, len(specs))}
	for i, s := range specs {
		d := partialSpecDTO{Col: s.Col, UseHist: s.UseHist}
		if s.UseHist {
			d.Lo, d.Hi = fbits(s.Lo), fbits(s.Hi)
		}
		req.Specs[i] = d
	}
	var dtos []partialDTO
	if err := c.postJSON(ctx, "partials", "/shard/v1/partials", req, &dtos); err != nil {
		return nil, err
	}
	if len(dtos) != len(specs) {
		return nil, &ShardError{Location: c.primary, Op: "partials", Err: fmt.Errorf("%d partials for %d specs", len(dtos), len(specs))}
	}
	out := make([]*shard.ColumnPartial, len(dtos))
	for i, d := range dtos {
		p, err := partialFromDTO(d)
		if err != nil {
			return nil, &ShardError{Location: c.primary, Op: "partials", Err: err}
		}
		out[i] = p
	}
	return out, nil
}

// PredicateCount implements shard.StatBackend: the per-predicate bitmap
// count, answered where the shard lives.
func (c *Client) PredicateCount(ctx context.Context, p query.Predicate) (int, error) {
	var dto countDTO
	if err := c.postJSON(ctx, "predcount", "/shard/v1/predcount", predToDTO(p), &dto); err != nil {
		return 0, err
	}
	return dto.Count, nil
}

// PredicateBits implements shard.PredBitsBackend: the predicate's
// exact selection bitmap alongside its count, so the coordinator
// assembles non-empty session bases without touching the chunk plane.
// Old servers ignore the wantBits request field and answer count-only;
// words is nil then and the caller decides (empty stays chunk-free,
// non-empty falls back to scanning).
func (c *Client) PredicateBits(ctx context.Context, p query.Predicate) (int, []uint64, error) {
	d := predToDTO(p)
	d.WantBits = true
	var dto countDTO
	if err := c.postJSON(ctx, "predcount", "/shard/v1/predcount", d, &dto); err != nil {
		return 0, nil, err
	}
	if dto.Bits == "" {
		return dto.Count, nil, nil
	}
	words, err := decodeWords(dto.Bits)
	if err != nil {
		return 0, nil, &ShardError{Location: c.primary, Op: "predcount", Err: err}
	}
	if want := (c.rows + 63) / 64; len(words) != want {
		return 0, nil, &ShardError{Location: c.primary, Op: "predcount", Err: fmt.Errorf("predicate bitmap has %d words for %d rows", len(words), c.rows)}
	}
	if tail := uint(c.rows % 64); tail != 0 && len(words) > 0 && words[len(words)-1]>>tail != 0 {
		return 0, nil, &ShardError{Location: c.primary, Op: "predcount", Err: fmt.Errorf("predicate bitmap sets bits past row %d", c.rows)}
	}
	return dto.Count, words, nil
}

// ServerStats implements shard.ServerStatsBackend: one RPC fetching
// the shard server's own counter snapshot for fleet rollup.
func (c *Client) ServerStats(ctx context.Context) (shard.ServerStats, error) {
	var dto shardStatsDTO
	if err := c.getJSON(ctx, "stats", "/shard/v1/stats", nil, &dto); err != nil {
		return shard.ServerStats{}, err
	}
	return shard.ServerStats{
		Requests:      dto.Requests,
		BytesOut:      dto.BytesOut,
		StatComputes:  dto.StatComputes,
		ChunkServes:   dto.ChunkServes,
		Draining:      dto.Draining,
		BytesRead:     dto.BytesRead,
		ChunksDecoded: dto.ChunksDecoded,
		CacheHits:     dto.CacheHits,
		CacheBytes:    dto.CacheBytes,
	}, nil
}

// Health implements shard.HealthBackend: one uncached round trip,
// timed.
func (c *Client) Health() (time.Duration, error) {
	start := time.Now()
	var dto healthDTO
	if err := c.getJSON(context.Background(), "health", "/shard/v1/health", nil, &dto); err != nil {
		return 0, err
	}
	if !dto.OK {
		return 0, &ShardError{Location: c.primary, Op: "health", Err: errors.New("shard reports not ok")}
	}
	return time.Since(start), nil
}
