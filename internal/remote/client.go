package remote

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/storage"
)

// ShardError is the named per-shard failure of the fabric: every error
// a Client returns is wrapped in one, so an exploration that dies
// because a remote shard timed out, truncated a payload or served
// corrupt bytes says WHICH shard and WHAT operation — never a bare
// transport error, and never a silently partial answer.
type ShardError struct {
	// Location is the shard's URL as the manifest names it.
	Location string
	// Op is the failing operation ("chunk", "values", "meta", ...).
	Op string
	// Err is the final underlying failure (after retries).
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("remote shard %s: %s: %v", e.Location, e.Op, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// httpStatusError is a non-200 answer; statuses below 500 are not
// retried (the request itself is wrong).
type httpStatusError struct {
	status int
	msg    string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.status, e.msg)
}

// counters aggregates fabric traffic across every client of one Opener.
type counters struct {
	rpcs         atomic.Int64
	bytesIn      atomic.Int64
	chunkFetches atomic.Int64
	retries      atomic.Int64
}

// Client speaks the fabric protocol to one shard server. It implements
// shard.Backend (+ StatBackend, HealthBackend, IOBackend) and
// storage.ChunkSource/ChunkPrefetcher, so a shard.Set routes through it
// exactly as it routes through a local file. Requests share a pooled
// transport, are bounded in flight per shard, retried on transient
// failures, and every fetched chunk is CRC-checked before it is
// decoded.
type Client struct {
	base string // normalized URL, no trailing slash
	hc   *http.Client
	sem  chan struct{}

	retries   int
	retryWait time.Duration

	cache *colstore.ChunkCache
	stats *counters // opener-wide aggregates
	// Per-shard counters behind IOStats (a Set sums its shards', so
	// these must not alias the opener-wide totals).
	ownBytes  atomic.Int64
	ownChunks atomic.Int64

	// Shard snapshot, fetched at open.
	table     string
	rows      int
	chunkSize int
	version   byte
	schema    *storage.Schema
	zones     [][]storage.ZoneMap

	// dicts memoizes string dictionaries per column, each behind its own
	// lock so first touches of different columns fetch concurrently; a
	// failed fetch is not cached (the next touch retries).
	dicts []dictSlot

	prefetching atomic.Int64
	closed      atomic.Bool
}

type dictSlot struct {
	mu   sync.Mutex
	vals []string
	done bool
}

// init fetches and validates the shard's metadata and zone maps.
func (c *Client) init() error {
	data, _, err := c.do("meta", http.MethodGet, "/shard/v1/meta", nil, nil, nil)
	if err != nil {
		return err
	}
	var meta metaDTO
	if err := json.Unmarshal(data, &meta); err != nil {
		return &ShardError{Location: c.base, Op: "meta", Err: err}
	}
	if meta.Rows < 0 || meta.ChunkSize <= 0 || meta.ChunkSize%64 != 0 {
		return &ShardError{Location: c.base, Op: "meta", Err: fmt.Errorf("implausible shape rows=%d chunkSize=%d", meta.Rows, meta.ChunkSize)}
	}
	if meta.Version < 1 || meta.Version > int(colstore.Version) {
		return &ShardError{Location: c.base, Op: "meta", Err: fmt.Errorf("unsupported chunk encoding version %d (this client handles 1..%d)", meta.Version, colstore.Version)}
	}
	fields := make([]storage.Field, len(meta.Columns))
	for i, col := range meta.Columns {
		typ, err := parseTypeName(col.Type)
		if err != nil {
			return &ShardError{Location: c.base, Op: "meta", Err: err}
		}
		fields[i] = storage.Field{Name: col.Name, Type: typ}
	}
	schema, err := storage.NewSchema(fields...)
	if err != nil {
		return &ShardError{Location: c.base, Op: "meta", Err: err}
	}
	c.table, c.rows, c.chunkSize = meta.Table, meta.Rows, meta.ChunkSize
	c.version = byte(meta.Version)
	c.schema = schema
	c.dicts = make([]dictSlot, len(fields))

	data, _, err = c.do("zones", http.MethodGet, "/shard/v1/zones", nil, nil, nil)
	if err != nil {
		return err
	}
	var zdto zonesDTO
	if err := json.Unmarshal(data, &zdto); err != nil {
		return &ShardError{Location: c.base, Op: "zones", Err: err}
	}
	numChunks := c.numChunks()
	if len(zdto.Zones) != len(fields) {
		return &ShardError{Location: c.base, Op: "zones", Err: fmt.Errorf("%d zone columns for %d fields", len(zdto.Zones), len(fields))}
	}
	zones := make([][]storage.ZoneMap, len(fields))
	for ci, col := range zdto.Zones {
		if len(col) != numChunks {
			return &ShardError{Location: c.base, Op: "zones", Err: fmt.Errorf("column %d has %d zone maps for %d chunks", ci, len(col), numChunks)}
		}
		zones[ci] = make([]storage.ZoneMap, numChunks)
		for k, d := range col {
			zm, err := zoneFromDTO(d)
			if err != nil {
				return &ShardError{Location: c.base, Op: "zones", Err: err}
			}
			zones[ci][k] = zm
		}
	}
	c.zones = zones
	return nil
}

func (c *Client) numChunks() int {
	if c.rows == 0 {
		return 0
	}
	return (c.rows + c.chunkSize - 1) / c.chunkSize
}

// ---- transport ----

// do runs one fabric request with bounded in-flight admission and
// per-shard retries. check validates a successful response (length and
// CRC tests); its failures are retried like transport errors, because a
// truncated or corrupted body may be transient. The final error is a
// *ShardError naming this shard.
func (c *Client) do(op, method, path string, q url.Values, body []byte, check func([]byte, http.Header) error) ([]byte, http.Header, error) {
	if c.closed.Load() {
		return nil, nil, &ShardError{Location: c.base, Op: op, Err: errors.New("client closed")}
	}
	c.sem <- struct{}{}
	defer func() { <-c.sem }()
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.stats.retries.Add(1)
			time.Sleep(c.retryWait * time.Duration(attempt))
		}
		data, hdr, err := c.doOnce(method, path, q, body)
		if err == nil && check != nil {
			err = check(data, hdr)
		}
		if err == nil {
			return data, hdr, nil
		}
		lastErr = err
		var hs *httpStatusError
		if errors.As(err, &hs) && hs.status < 500 {
			break // the request is wrong; retrying cannot fix it
		}
	}
	return nil, nil, &ShardError{Location: c.base, Op: op, Err: lastErr}
}

func (c *Client) doOnce(method, path string, q url.Values, body []byte) ([]byte, http.Header, error) {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, u, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.stats.rpcs.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	c.stats.bytesIn.Add(int64(len(data)))
	c.ownBytes.Add(int64(len(data)))
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, &httpStatusError{status: resp.StatusCode, msg: strings.TrimSpace(string(data))}
	}
	return data, resp.Header, nil
}

// getJSON runs a GET and decodes its JSON answer.
func (c *Client) getJSON(op, path string, q url.Values, into any) error {
	data, _, err := c.do(op, http.MethodGet, path, q, nil, nil)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, into); err != nil {
		return &ShardError{Location: c.base, Op: op, Err: err}
	}
	return nil
}

// postJSON runs a POST with a JSON body and decodes the JSON answer.
func (c *Client) postJSON(op, path string, reqBody, into any) error {
	body, err := json.Marshal(reqBody)
	if err != nil {
		return &ShardError{Location: c.base, Op: op, Err: err}
	}
	data, _, err := c.do(op, http.MethodPost, path, nil, body, nil)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, into); err != nil {
		return &ShardError{Location: c.base, Op: op, Err: err}
	}
	return nil
}

// ---- shard.Backend ----

// Meta implements shard.Backend.
func (c *Client) Meta() shard.BackendMeta {
	return shard.BackendMeta{Table: c.table, Rows: c.rows, ChunkSize: c.chunkSize, Schema: c.schema}
}

// Zones implements shard.Backend.
func (c *Client) Zones() [][]storage.ZoneMap { return c.zones }

// Dicts implements shard.Backend, fetching each string dictionary once
// (per-column locks, so different columns' first touches overlap).
func (c *Client) Dicts(ci int) ([]string, error) {
	if ci < 0 || ci >= c.schema.NumFields() {
		return nil, &ShardError{Location: c.base, Op: "dict", Err: fmt.Errorf("column %d out of range", ci)}
	}
	if c.schema.Field(ci).Type != storage.String {
		return nil, nil
	}
	slot := &c.dicts[ci]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.done {
		return slot.vals, nil
	}
	var dto dictDTO
	if err := c.getJSON("dict", "/shard/v1/dict", url.Values{"col": {strconv.Itoa(ci)}}, &dto); err != nil {
		return nil, err
	}
	if dto.Values == nil {
		dto.Values = []string{}
	}
	slot.vals, slot.done = dto.Values, true
	return slot.vals, nil
}

// Source implements shard.Backend: the client is its own chunk source.
func (c *Client) Source() storage.ChunkSource { return c }

// Close implements shard.Backend: drops this shard's cached payloads.
// The pooled transport belongs to the Opener and stays usable.
func (c *Client) Close() error {
	if !c.closed.Swap(true) {
		c.cache.Drop(c)
	}
	return nil
}

// IOStats implements shard.IOBackend: THIS shard's bytes over the wire
// and chunk fetches, so /api/stats and the bench counters see remote
// I/O the way they see file I/O (a Set sums these across its shards).
func (c *Client) IOStats() colstore.IOStats {
	return colstore.IOStats{
		BytesRead:     c.ownBytes.Load(),
		ChunksDecoded: c.ownChunks.Load(),
	}
}

// ---- chunk plane ----

// FetchChunk implements storage.ChunkSource: cache lookup, then one
// RPC + CRC check + decode on a miss. Payload contents are identical to
// a local open of the same shard file — the wire carries the file's own
// chunk encoding.
func (c *Client) FetchChunk(ci, k int) (*storage.ChunkPayload, bool, error) {
	if ci < 0 || ci >= c.schema.NumFields() || k < 0 || k >= c.numChunks() {
		return nil, false, &ShardError{Location: c.base, Op: "chunk", Err: fmt.Errorf("chunk (%d,%d) out of range", ci, k)}
	}
	return c.cache.Get(c, ci, k, func() (*storage.ChunkPayload, error) {
		return c.loadChunk(ci, k)
	})
}

// loadChunk is the cache-miss path of FetchChunk.
func (c *Client) loadChunk(ci, k int) (*storage.ChunkPayload, error) {
	dictLen := 0
	if c.schema.Field(ci).Type == storage.String {
		dict, err := c.Dicts(ci)
		if err != nil {
			return nil, err
		}
		dictLen = len(dict)
	}
	check := func(data []byte, hdr http.Header) error {
		if lenStr := hdr.Get(headerChunkLen); lenStr != "" {
			if want, err := strconv.Atoi(lenStr); err == nil && want != len(data) {
				return fmt.Errorf("truncated chunk (%d,%d): got %d of %d bytes", ci, k, len(data), want)
			}
		}
		crcStr := hdr.Get(headerChunkCRC)
		if crcStr == "" {
			return fmt.Errorf("chunk (%d,%d): missing CRC header", ci, k)
		}
		want, err := strconv.ParseUint(crcStr, 16, 32)
		if err != nil {
			return fmt.Errorf("chunk (%d,%d): bad CRC header %q", ci, k, crcStr)
		}
		if got := crc32.ChecksumIEEE(data); got != uint32(want) {
			return fmt.Errorf("chunk (%d,%d): checksum mismatch (header %08x, computed %08x)", ci, k, want, got)
		}
		return nil
	}
	q := url.Values{"col": {strconv.Itoa(ci)}, "chunk": {strconv.Itoa(k)}}
	data, _, err := c.do("chunk", http.MethodGet, "/shard/v1/chunk", q, nil, check)
	if err != nil {
		return nil, err
	}
	chunkRows := c.chunkSize
	if hi := (k + 1) * c.chunkSize; hi > c.rows {
		chunkRows = c.rows - k*c.chunkSize
	}
	p, err := colstore.DecodeChunk(data, c.schema.Field(ci), dictLen, chunkRows, k, c.version)
	if err != nil {
		return nil, &ShardError{Location: c.base, Op: "chunk", Err: fmt.Errorf("chunk (%d,%d): %w", ci, k, err)}
	}
	c.stats.chunkFetches.Add(1)
	c.ownChunks.Add(1)
	return p, nil
}

// maxClientPrefetch bounds a shard's concurrent speculative fetches.
const maxClientPrefetch = 2

// PrefetchChunk implements storage.ChunkPrefetcher: an asynchronous,
// single-flight, eviction-aware fetch of the chunk a sequential scan
// will touch next — this is where the fabric hides its round-trip
// latency. Skipped when the chunk is resident, the cache has no room,
// or enough prefetches are already in flight.
func (c *Client) PrefetchChunk(ci, k int) {
	if c.closed.Load() || ci < 0 || ci >= c.schema.NumFields() || k < 0 || k >= c.numChunks() {
		return
	}
	if c.cache.Contains(c, ci, k) {
		return
	}
	chunkRows := c.chunkSize
	if hi := (k + 1) * c.chunkSize; hi > c.rows {
		chunkRows = c.rows - k*c.chunkSize
	}
	if !c.cache.HasRoom(int64(chunkRows) * 8) {
		return
	}
	if c.prefetching.Add(1) > maxClientPrefetch {
		c.prefetching.Add(-1)
		return
	}
	go func() {
		defer c.prefetching.Add(-1)
		_, _, _ = c.FetchChunk(ci, k)
	}()
}

// ---- statistics plane (shard.StatBackend) ----

// NumericValues implements shard.StatBackend: the shard's non-NULL
// values in row order, as one binary stream.
func (c *Client) NumericValues(attr string) ([]float64, error) {
	check := func(data []byte, hdr http.Header) error {
		if cs := hdr.Get(headerCount); cs != "" {
			if want, err := strconv.Atoi(cs); err == nil && want*8 != len(data) {
				return fmt.Errorf("truncated value stream for %q: got %d of %d bytes", attr, len(data), want*8)
			}
		}
		if len(data)%8 != 0 {
			return fmt.Errorf("value stream for %q: %d bytes is not a multiple of 8", attr, len(data))
		}
		return nil
	}
	data, _, err := c.do("values", http.MethodGet, "/shard/v1/values", url.Values{"attr": {attr}}, nil, check)
	if err != nil {
		return nil, err
	}
	vals, err := decodeFloats(data)
	if err != nil {
		return nil, &ShardError{Location: c.base, Op: "values", Err: err}
	}
	return vals, nil
}

// CategoryCounts implements shard.StatBackend (local dictionary space).
func (c *Client) CategoryCounts(attr string) ([]string, []int, error) {
	var dto catCountsDTO
	if err := c.getJSON("catcounts", "/shard/v1/catcounts", url.Values{"attr": {attr}}, &dto); err != nil {
		return nil, nil, err
	}
	if len(dto.Dict) != len(dto.Counts) {
		return nil, nil, &ShardError{Location: c.base, Op: "catcounts", Err: fmt.Errorf("%d dictionary entries with %d counts", len(dto.Dict), len(dto.Counts))}
	}
	return dto.Dict, dto.Counts, nil
}

// BoolCounts implements shard.StatBackend.
func (c *Client) BoolCounts(attr string) (int, int, error) {
	var dto boolCountsDTO
	if err := c.getJSON("boolcounts", "/shard/v1/boolcounts", url.Values{"attr": {attr}}, &dto); err != nil {
		return 0, 0, err
	}
	return dto.Falses, dto.Trues, nil
}

// ColumnPartials implements shard.StatBackend: every requested column's
// mergeable bundle in one round trip.
func (c *Client) ColumnPartials(specs []shard.PartialSpec) ([]*shard.ColumnPartial, error) {
	req := partialsReqDTO{Specs: make([]partialSpecDTO, len(specs))}
	for i, s := range specs {
		d := partialSpecDTO{Col: s.Col, UseHist: s.UseHist}
		if s.UseHist {
			d.Lo, d.Hi = fbits(s.Lo), fbits(s.Hi)
		}
		req.Specs[i] = d
	}
	var dtos []partialDTO
	if err := c.postJSON("partials", "/shard/v1/partials", req, &dtos); err != nil {
		return nil, err
	}
	if len(dtos) != len(specs) {
		return nil, &ShardError{Location: c.base, Op: "partials", Err: fmt.Errorf("%d partials for %d specs", len(dtos), len(specs))}
	}
	out := make([]*shard.ColumnPartial, len(dtos))
	for i, d := range dtos {
		p, err := partialFromDTO(d)
		if err != nil {
			return nil, &ShardError{Location: c.base, Op: "partials", Err: err}
		}
		out[i] = p
	}
	return out, nil
}

// PredicateCount implements shard.StatBackend: the per-predicate bitmap
// count, answered where the shard lives.
func (c *Client) PredicateCount(p query.Predicate) (int, error) {
	var dto countDTO
	if err := c.postJSON("predcount", "/shard/v1/predcount", predToDTO(p), &dto); err != nil {
		return 0, err
	}
	return dto.Count, nil
}

// Health implements shard.HealthBackend: one uncached round trip,
// timed.
func (c *Client) Health() (time.Duration, error) {
	start := time.Now()
	var dto healthDTO
	if err := c.getJSON("health", "/shard/v1/health", nil, &dto); err != nil {
		return 0, err
	}
	if !dto.OK {
		return 0, &ShardError{Location: c.base, Op: "health", Err: errors.New("shard reports not ok")}
	}
	return time.Since(start), nil
}
