package remote

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/remote/chaos"
	"repro/internal/session"
	"repro/internal/shard"
	"repro/internal/storage"
)

// chaos-driven failover coverage: every replica of an in-process
// fabric sits behind a chaos.Injector, tests script the faults (a
// replica killed mid-Explore, 500 storms, corrupt payloads) and the
// exploration must complete byte-identically against the survivors.

// repFabric is a replicated in-process deployment: each shard is served
// by several replica servers, every one behind its own fault injector.
type repFabric struct {
	manifest  string
	urls      [][]string          // [shard][replica]
	injectors [][]*chaos.Injector // [shard][replica]
	shardSrv  [][]*Server         // [shard][replica]
}

// startReplicatedFabric spins `replicas` chaos-wrapped servers per shard
// of localManifest and writes the v3 coordinator manifest naming them.
func startReplicatedFabric(t *testing.T, localManifest string, replicas int) *repFabric {
	t.Helper()
	m, err := shard.ReadManifest(localManifest)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Dir(localManifest)
	rf := &repFabric{}
	entries := make([]string, len(m.Shards))
	for _, sf := range m.Shards {
		var urls []string
		var injs []*chaos.Injector
		var srvs []*Server
		for r := 0; r < replicas; r++ {
			st, err := colstore.OpenWith(filepath.Join(dir, sf.File), colstore.Options{Mode: colstore.ModeLazy})
			if err != nil {
				t.Fatal(err)
			}
			rs := NewServer(st)
			in := chaos.Wrap(rs.Handler())
			ts := httptest.NewServer(in)
			t.Cleanup(ts.Close)
			t.Cleanup(func() { st.Close() })
			urls = append(urls, ts.URL)
			injs = append(injs, in)
			srvs = append(srvs, rs)
		}
		entries[len(rf.urls)] = strings.Join(urls, "|")
		rf.urls = append(rf.urls, urls)
		rf.injectors = append(rf.injectors, injs)
		rf.shardSrv = append(rf.shardSrv, srvs)
	}
	rm, err := shard.RemoteManifest(m, entries)
	if err != nil {
		t.Fatal(err)
	}
	rf.manifest = filepath.Join(t.TempDir(), "replicated.atlm")
	if err := shard.WriteManifestFile(rf.manifest, rm); err != nil {
		t.Fatal(err)
	}
	return rf
}

// unshardedRef renders the reference result of q over the plain table.
func unshardedRef(t *testing.T, tbl *storage.Table, q query.Query) string {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Parallelism = 1
	cart, err := core.NewCartographer(tbl, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cart.Explore(q)
	if err != nil {
		t.Fatal(err)
	}
	return renderResult(res)
}

// TestFailoverMidExploreByteIdentical is the tentpole acceptance test:
// a 4-shard × 2-replica fabric loses one replica in the middle of an
// exploration's request stream, and the run must still complete — with
// a result byte-identical to the unsharded table's.
func TestFailoverMidExploreByteIdentical(t *testing.T) {
	tbl := datagen.Census(12_000, 7)
	local := writeShardedInputs(t, tbl, 4, 256)
	rf := startReplicatedFabric(t, local, 2)
	q := query.New("census", query.NewRange("age", 20, 70))
	want := unshardedRef(t, tbl, q)

	opener := NewOpener(Options{Timeout: 5 * time.Second, RetryWait: time.Millisecond, BreakerCooldown: time.Minute})
	set, err := shard.OpenWith(rf.manifest, shard.Options{Remote: opener})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	// Arm the death AFTER the open, so shard 1's primary serves the
	// metadata, then dies two requests into the exploration itself.
	rf.injectors[1][0].KillAfter(2)

	opts := core.DefaultOptions()
	opts.Parallelism = 4
	cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(opts.Parallelism))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cart.Explore(q)
	if err != nil {
		t.Fatalf("exploration failed despite a live replica: %v", err)
	}
	if got := renderResult(res); got != want {
		t.Errorf("failover result differs from unsharded:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if opener.Stats().Failovers == 0 {
		t.Error("no failover recorded while a replica was dying")
	}
	if rf.injectors[1][1].Requests() == 0 {
		t.Error("shard 1's surviving replica was never dialed")
	}
	h := set.ShardHealth(1)
	if len(h.Replicas) != 2 {
		t.Fatalf("ShardHealth reports %d replicas, want 2", len(h.Replicas))
	}
	if !h.Healthy {
		t.Errorf("shard unhealthy despite a live replica: %v", h.Err)
	}
}

// TestReplicaBreakerAndRecovery walks the breaker state machine:
// trip on failure, out of rotation while open, half-open probe after
// the cooldown, closed again on success — all without reopening the
// shard.
func TestReplicaBreakerAndRecovery(t *testing.T) {
	tbl := datagen.Census(3_000, 11)
	local := writeShardedInputs(t, tbl, 1, 256)
	rf := startReplicatedFabric(t, local, 2)
	opener := NewOpener(Options{
		Timeout: 2 * time.Second, Retries: -1, RetryWait: time.Millisecond,
		BreakerThreshold: 1, BreakerCooldown: 50 * time.Millisecond,
	})
	be, err := opener.OpenShard(rf.urls[0], colstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	c := be.(*Client)
	p := query.NewRange("age", 30, 40)
	if _, err := c.PredicateCount(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	primary, secondary := rf.injectors[0][0], rf.injectors[0][1]

	// The primary starts 500ing: the first strike trips its breaker
	// (threshold 1) and the call still succeeds via the replica.
	primary.SetFault(chaos.Error5xx)
	if _, err := c.PredicateCount(context.Background(), p); err != nil {
		t.Fatalf("call failed despite a healthy replica: %v", err)
	}
	reps := c.Replicas()
	if len(reps) != 2 {
		t.Fatalf("Replicas() reports %d entries, want 2", len(reps))
	}
	if reps[0].State != "tripped" {
		t.Errorf("primary state %q after a trip, want tripped", reps[0].State)
	}
	if reps[0].Err == nil {
		t.Error("tripped primary carries no error")
	}
	if reps[1].State != "healthy" {
		t.Errorf("replica state %q, want healthy", reps[1].State)
	}
	if opener.Stats().Failovers == 0 {
		t.Error("failover not counted")
	}

	// Tripped means out of rotation: further traffic leaves it alone
	// instead of hammering a dead peer.
	before := primary.Requests()
	for i := 0; i < 5; i++ {
		if _, err := c.PredicateCount(context.Background(), p); err != nil {
			t.Fatal(err)
		}
	}
	if got := primary.Requests(); got != before {
		t.Errorf("tripped primary served %d more requests", got-before)
	}

	// Recovery: the primary heals, the replica dies. Past the cooldown
	// the next touch probes the primary half-open; its success closes
	// the breaker again.
	primary.Heal()
	secondary.SetFault(chaos.Kill)
	time.Sleep(80 * time.Millisecond)
	if _, err := c.PredicateCount(context.Background(), p); err != nil {
		t.Fatalf("probe of the healed primary failed: %v", err)
	}
	reps = c.Replicas()
	if reps[0].State != "healthy" {
		t.Errorf("primary state %q after recovery, want healthy", reps[0].State)
	}
}

// TestBreakerSingleReplicaSelfHeals: with only one location, a tripped
// breaker never blackholes the shard — the sole replica is re-dialed
// on the next touch even inside the cooldown.
func TestBreakerSingleReplicaSelfHeals(t *testing.T) {
	tbl := datagen.Census(2_000, 13)
	local := writeShardedInputs(t, tbl, 1, 256)
	rf := startReplicatedFabric(t, local, 1)
	opener := NewOpener(Options{
		Timeout: 2 * time.Second, Retries: -1, RetryWait: time.Millisecond,
		BreakerThreshold: 1, BreakerCooldown: time.Minute,
	})
	be, err := opener.OpenShard(rf.urls[0], colstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	c := be.(*Client)
	p := query.NewRange("age", 30, 40)
	inj := rf.injectors[0][0]
	inj.SetFault(chaos.Error5xx)
	if _, err := c.PredicateCount(context.Background(), p); err == nil {
		t.Fatal("succeeded against a 500ing sole replica")
	}
	if state := c.Replicas()[0].State; state != "tripped" {
		t.Errorf("sole replica state %q, want tripped", state)
	}
	inj.Heal()
	if _, err := c.PredicateCount(context.Background(), p); err != nil {
		t.Fatalf("tripped sole replica was never re-dialed: %v", err)
	}
	if state := c.Replicas()[0].State; state != "healthy" {
		t.Errorf("sole replica state %q after recovery, want healthy", state)
	}
}

// TestChaosCorruptionFailsOver: one shard's primary corrupts chunk
// bodies, another's truncates them. The CRC/length checks must catch
// both and rotate to the clean replica, byte-identically.
func TestChaosCorruptionFailsOver(t *testing.T) {
	tbl := datagen.Census(8_000, 5)
	local := writeShardedInputs(t, tbl, 2, 256)
	rf := startReplicatedFabric(t, local, 2)
	q := query.New("census", query.NewRange("age", 18, 80))
	want := unshardedRef(t, tbl, q)

	chunkOnly := func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/chunk") }
	rf.injectors[0][0].Match(chunkOnly)
	rf.injectors[0][0].SetFault(chaos.Corrupt)
	rf.injectors[1][0].Match(chunkOnly)
	rf.injectors[1][0].SetFault(chaos.Truncate)

	opener := NewOpener(Options{Timeout: 5 * time.Second, RetryWait: time.Millisecond})
	set, err := shard.OpenWith(rf.manifest, shard.Options{Remote: opener})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	opts := core.DefaultOptions()
	opts.Parallelism = 2
	cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(opts.Parallelism))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cart.Explore(q)
	if err != nil {
		t.Fatalf("exploration failed despite clean replicas: %v", err)
	}
	if got := renderResult(res); got != want {
		t.Errorf("tampered-fabric result differs from unsharded:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if rf.injectors[0][0].Injected() == 0 || rf.injectors[1][0].Injected() == 0 {
		t.Error("chaos faults were never exercised — test lost its teeth")
	}
	if opener.Stats().Failovers == 0 {
		t.Error("no failover recorded despite tampered payloads")
	}
}

// TestAllReplicasDeadNamesShard: when every replica of a shard is
// dead, the exploration fails with an error naming the shard's primary
// location — never a partial result.
func TestAllReplicasDeadNamesShard(t *testing.T) {
	tbl := datagen.Census(4_000, 19)
	local := writeShardedInputs(t, tbl, 2, 256)
	rf := startReplicatedFabric(t, local, 2)
	opener := NewOpener(Options{Timeout: 500 * time.Millisecond, Retries: -1, RetryWait: time.Millisecond})
	set, err := shard.OpenWith(rf.manifest, shard.Options{Remote: opener})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	rf.injectors[1][0].SetFault(chaos.Kill)
	rf.injectors[1][1].SetFault(chaos.Kill)
	opts := core.DefaultOptions()
	opts.Parallelism = 2
	cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(opts.Parallelism))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cart.Explore(query.New("census", query.NewRange("age", 18, 80)))
	if res != nil {
		t.Error("got a result from a shard with no live replica; partial answers must not be served")
	}
	assertNamedShardError(t, err, rf.urls[1][0])
}

// stripBatch simulates a pre-batch shard server: 404 on /batchstats,
// everything else faithful. The client must fall back per-attribute.
func stripBatch(_ int, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/batchstats") {
			http.NotFound(w, r)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// TestBatchStatsFallbackAndSavings runs the same cold Explore against a
// batch-capable fabric and a legacy one: results must be identical, and
// the batch endpoint must cut statistics-plane RPCs at least 4×.
func TestBatchStatsFallbackAndSavings(t *testing.T) {
	tbl := datagen.Census(10_000, 23)
	local := writeShardedInputs(t, tbl, 4, 256)
	q := query.New("census")
	want := unshardedRef(t, tbl, q)

	run := func(wrap func(int, http.Handler) http.Handler) (string, int64) {
		f := startFabric(t, local, wrap)
		opener := testOpener()
		set, err := shard.OpenWith(f.manifest, shard.Options{Remote: opener})
		if err != nil {
			t.Fatal(err)
		}
		defer set.Close()
		opts := core.DefaultOptions()
		opts.Parallelism = 2
		cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(opts.Parallelism))
		if err != nil {
			t.Fatal(err)
		}
		s0 := opener.Stats()
		res, err := cart.Explore(q)
		if err != nil {
			t.Fatal(err)
		}
		s1 := opener.Stats()
		statsRPCs := (s1.RPCs - s0.RPCs) - (s1.ChunkFetches - s0.ChunkFetches)
		return renderResult(res), statsRPCs
	}

	gotBatch, batchRPCs := run(nil)
	gotLegacy, legacyRPCs := run(stripBatch)
	if gotBatch != want {
		t.Errorf("batch-fabric result differs from unsharded:\nwant:\n%s\ngot:\n%s", want, gotBatch)
	}
	if gotLegacy != want {
		t.Errorf("legacy-fallback result differs from unsharded:\nwant:\n%s\ngot:\n%s", want, gotLegacy)
	}
	t.Logf("stats-plane RPCs: batch=%d legacy=%d", batchRPCs, legacyRPCs)
	if batchRPCs*4 > legacyRPCs {
		t.Errorf("batch stats cut stats-plane RPCs %d → %d: less than the required 4×", legacyRPCs, batchRPCs)
	}
}

// TestServerMemoizesStatistics: a shard server computes each
// attribute's statistics once, ever — a second client (a coordinator
// restart) is served from the memo.
func TestServerMemoizesStatistics(t *testing.T) {
	tbl := datagen.Census(4_000, 31)
	local := writeShardedInputs(t, tbl, 1, 256)
	f := startFabric(t, local, nil)
	srv := f.shardSrv[0]
	opener := testOpener()

	touch := func() {
		be, err := opener.OpenShard([]string{f.servers[0].URL}, colstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer be.Close()
		c := be.(*Client)
		if _, err := c.NumericValues(context.Background(), "age"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.CategoryCounts(context.Background(), "sex"); err != nil {
			t.Fatal(err)
		}
	}
	touch()
	after := srv.Stats().StatComputes
	if after == 0 {
		t.Fatal("no statistics computed at all")
	}
	touch()
	if got := srv.Stats().StatComputes; got != after {
		t.Errorf("second client recomputed statistics: %d → %d computes", after, got)
	}

	// The per-attribute legacy path shares the same memo.
	be, err := opener.OpenShard([]string{f.servers[0].URL}, colstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	c := be.(*Client)
	c.statsMu.Lock()
	c.batchOff = true
	c.statsMu.Unlock()
	for i := 0; i < 3; i++ {
		if _, err := c.NumericValues(context.Background(), "age"); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Stats().StatComputes; got != after {
		t.Errorf("legacy per-attribute calls recomputed statistics: %d → %d computes", after, got)
	}
}

// stripBits simulates a pre-bitmap shard server: /predcount answers
// lose their "bits" field, so clients only learn the count.
func stripBits(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/predcount") {
			h.ServeHTTP(w, r)
			return
		}
		rec := newRecorder()
		h.ServeHTTP(rec, r)
		body := rec.body
		if rec.status == http.StatusOK {
			var m map[string]any
			if err := json.Unmarshal(rec.body, &m); err == nil {
				delete(m, "bits")
				if out, err := json.Marshal(m); err == nil {
					body = out
				}
			}
		}
		for k, vs := range rec.hdr {
			if k == "Content-Length" {
				continue
			}
			w.Header()[k] = vs
		}
		w.WriteHeader(rec.status)
		_, _ = w.Write(body)
	})
}

// TestPredicateBitsWire: the bitmap a shard serves over the stats plane
// is exactly the local scan's, and old servers degrade to count-only.
func TestPredicateBitsWire(t *testing.T) {
	tbl := datagen.Census(5_000, 37)
	local := writeShardedInputs(t, tbl, 1, 256)
	f := startFabric(t, local, nil)
	be, err := testOpener().OpenShard([]string{f.servers[0].URL}, colstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	c := be.(*Client)
	for _, p := range []query.Predicate{
		query.NewRange("age", 20, 40),
		query.NewIn("sex", "F"),
		query.NewRange("age", 200, 300), // empty
	} {
		want, err := engine.EvalPredicate(tbl, p)
		if err != nil {
			t.Fatal(err)
		}
		count, words, err := c.PredicateBits(context.Background(), p)
		if err != nil {
			t.Fatalf("%s: %v", p.String(), err)
		}
		if count != want.Count() {
			t.Errorf("%s: count %d, want %d", p.String(), count, want.Count())
		}
		ww := want.Words()
		if len(words) != len(ww) {
			t.Fatalf("%s: %d words, want %d", p.String(), len(words), len(ww))
		}
		for i := range ww {
			if words[i] != ww[i] {
				t.Fatalf("%s: bitmap word %d differs", p.String(), i)
			}
		}
	}

	// Old server: count survives, words degrade to nil.
	fOld := startFabric(t, local, func(_ int, h http.Handler) http.Handler { return stripBits(h) })
	beOld, err := testOpener().OpenShard([]string{fOld.servers[0].URL}, colstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer beOld.Close()
	cOld := beOld.(*Client)
	p := query.NewRange("age", 20, 40)
	want, err := engine.EvalPredicate(tbl, p)
	if err != nil {
		t.Fatal(err)
	}
	count, words, err := cOld.PredicateBits(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if words != nil {
		t.Error("legacy predcount answer produced bitmap words")
	}
	if count != want.Count() {
		t.Errorf("legacy count %d, want %d", count, want.Count())
	}
}

// TestSessionBaseBitsSkipChunkPlane: assembling a session base over the
// bitmap plane must pull no chunk from any shard, where the count-only
// fallback has to scan — and both produce the same result.
func TestSessionBaseBitsSkipChunkPlane(t *testing.T) {
	tbl := datagen.Census(8_000, 41)
	local := writeShardedInputs(t, tbl, 4, 256)
	q := query.New("census", query.NewRange("age", 25, 60), query.NewIn("sex", "F"))

	run := func(legacy bool) (string, int64) {
		var chunkRPCs atomic.Int64
		f := startFabric(t, local, func(_ int, h http.Handler) http.Handler {
			if legacy {
				h = stripBits(h)
			}
			inner := h
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasSuffix(r.URL.Path, "/chunk") {
					chunkRPCs.Add(1)
				}
				inner.ServeHTTP(w, r)
			})
		})
		set, err := shard.OpenWith(f.manifest, shard.Options{Remote: testOpener()})
		if err != nil {
			t.Fatal(err)
		}
		defer set.Close()
		opts := core.DefaultOptions()
		opts.Parallelism = 2
		cart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(opts.Parallelism))
		if err != nil {
			t.Fatal(err)
		}
		sess := session.NewSharded(cart, set)
		before := chunkRPCs.Load()
		node, err := sess.Explore(q)
		if err != nil {
			t.Fatal(err)
		}
		return renderResult(node.Result), chunkRPCs.Load() - before
	}

	gotBits, bitsChunks := run(false)
	gotLegacy, legacyChunks := run(true)
	if gotBits != gotLegacy {
		t.Errorf("bitmap-plane session result differs from scan fallback:\nbits:\n%s\nscan:\n%s", gotBits, gotLegacy)
	}
	t.Logf("session chunk RPCs: bits=%d legacy=%d", bitsChunks, legacyChunks)
	if bitsChunks != 0 {
		t.Errorf("session base assembly fetched %d chunks despite the bitmap plane", bitsChunks)
	}
	if legacyChunks == 0 {
		t.Error("count-only fallback fetched no chunks — test lost its teeth")
	}
}
