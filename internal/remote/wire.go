package remote

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/storage"
)

// This file defines the fabric's wire representations. Two rules keep
// the protocol honest:
//
//   - Floats travel as IEEE-754 bit patterns (hex for JSON fields,
//     little-endian u64 for binary bodies), never as decimal text: the
//     coordinator must reconstruct *exactly* the value the shard holds
//     (byte-identical explorations depend on it), and JSON numbers
//     cannot carry NaN or ±Inf at all.
//   - Bulk payloads (chunk bytes, numeric value streams) are binary;
//     everything metadata-shaped is JSON.

// fbits encodes a float64 as its hex bit pattern.
func fbits(v float64) string {
	return strconv.FormatUint(math.Float64bits(v), 16)
}

// parseFbits decodes a hex bit pattern back into a float64.
func parseFbits(s string) (float64, error) {
	u, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("remote: bad float bits %q", s)
	}
	return math.Float64frombits(u), nil
}

// Header names of the chunk plane.
const (
	// headerChunkCRC carries the chunk payload's CRC-32 (IEEE) in hex —
	// for v3 shard files, the same CRC the on-disk directory stores.
	headerChunkCRC = "X-Atlas-Chunk-Crc"
	// headerChunkLen carries the payload's byte length, so a truncated
	// body is detected even when the transport hid the short read.
	headerChunkLen = "X-Atlas-Chunk-Len"
	// headerTrace propagates the coordinator's trace context to a shard
	// server ("<traceID>/<parentSpanID>"), so the server's spans nest
	// under the RPC attempt that asked.
	headerTrace = "X-Atlas-Trace"
	// headerSpans carries the server's span subtree back in the response
	// (base64-encoded JSON, see obsv.EncodeSpanTree).
	headerSpans = "X-Atlas-Spans"
	// headerRequestID propagates the query request id, joining client
	// errors with server log lines.
	headerRequestID = "X-Atlas-Request-Id"
	// headerCount carries the value count of a binary float stream.
	headerCount = "X-Atlas-Count"
	// headerDeadline carries the caller's remaining deadline budget in
	// integer milliseconds; the server bounds the request's context by
	// it, aborting statcompute/chunk work whose caller has already given
	// up. Absent or malformed values mean "no deadline".
	headerDeadline = "X-Atlas-Deadline"
)

// metaDTO is GET /shard/v1/meta: the shard's identity.
type metaDTO struct {
	Table     string `json:"table"`
	Rows      int    `json:"rows"`
	ChunkSize int    `json:"chunkSize"`
	// Version is the chunk-plane encoding version (see
	// colstore.Store.WireVersion).
	Version int      `json:"version"`
	Columns []colDTO `json:"columns"`
}

type colDTO struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

func typeName(t storage.DataType) string {
	switch t {
	case storage.Int64:
		return "int64"
	case storage.Float64:
		return "float64"
	case storage.String:
		return "string"
	default:
		return "bool"
	}
}

func parseTypeName(s string) (storage.DataType, error) {
	switch s {
	case "int64":
		return storage.Int64, nil
	case "float64":
		return storage.Float64, nil
	case "string":
		return storage.String, nil
	case "bool":
		return storage.Bool, nil
	default:
		return 0, fmt.Errorf("remote: unknown column type %q", s)
	}
}

// zoneDTO is one zone map of GET /shard/v1/zones.
type zoneDTO struct {
	Min       string `json:"min,omitempty"` // Float64bits hex, valid with HasMinMax
	Max       string `json:"max,omitempty"`
	HasMinMax bool   `json:"hasMinMax,omitempty"`
	Nulls     int    `json:"nulls,omitempty"`
	Distinct  int    `json:"distinct,omitempty"`
	// CodeSet is the chunk's categorical code bitset, base64 over
	// little-endian u64 words; empty when untracked.
	CodeSet string `json:"codeSet,omitempty"`
}

// zonesDTO is GET /shard/v1/zones: [column][chunk].
type zonesDTO struct {
	Zones [][]zoneDTO `json:"zones"`
}

func zoneToDTO(zm storage.ZoneMap) zoneDTO {
	d := zoneDTO{HasMinMax: zm.HasMinMax, Nulls: zm.NullCount, Distinct: zm.Distinct}
	if zm.HasMinMax {
		d.Min, d.Max = fbits(zm.Min), fbits(zm.Max)
	}
	if zm.CodeSet != nil {
		buf := make([]byte, 8*len(zm.CodeSet))
		for i, w := range zm.CodeSet {
			binary.LittleEndian.PutUint64(buf[i*8:], w)
		}
		d.CodeSet = base64.StdEncoding.EncodeToString(buf)
	}
	return d
}

func zoneFromDTO(d zoneDTO) (storage.ZoneMap, error) {
	zm := storage.ZoneMap{HasMinMax: d.HasMinMax, NullCount: d.Nulls, Distinct: d.Distinct}
	if d.HasMinMax {
		var err error
		if zm.Min, err = parseFbits(d.Min); err != nil {
			return zm, err
		}
		if zm.Max, err = parseFbits(d.Max); err != nil {
			return zm, err
		}
	}
	if d.CodeSet != "" {
		buf, err := base64.StdEncoding.DecodeString(d.CodeSet)
		if err != nil || len(buf)%8 != 0 {
			return zm, fmt.Errorf("remote: bad code set encoding")
		}
		words := make([]uint64, len(buf)/8)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(buf[i*8:])
		}
		zm.CodeSet = words
	}
	return zm, nil
}

// dictDTO is GET /shard/v1/dict?col=N.
type dictDTO struct {
	Values []string `json:"values"`
}

// catCountsDTO is GET /shard/v1/catcounts?attr=A (local dictionary
// space; the coordinator remaps into union space).
type catCountsDTO struct {
	Dict   []string `json:"dict"`
	Counts []int    `json:"counts"`
}

// boolCountsDTO is GET /shard/v1/boolcounts?attr=A.
type boolCountsDTO struct {
	Falses int `json:"falses"`
	Trues  int `json:"trues"`
}

// predDTO is the wire form of a query.Predicate (POST /shard/v1/predcount).
type predDTO struct {
	Attr    string   `json:"attr"`
	Kind    int      `json:"kind"`
	Lo      string   `json:"lo,omitempty"`
	Hi      string   `json:"hi,omitempty"`
	LoIncl  bool     `json:"loIncl,omitempty"`
	HiIncl  bool     `json:"hiIncl,omitempty"`
	Values  []string `json:"values,omitempty"`
	BoolVal bool     `json:"boolVal,omitempty"`
	// WantBits asks for the selection bitmap alongside the count. Old
	// servers decode predcount bodies leniently and simply ignore it,
	// answering count-only — the fallback the client handles.
	WantBits bool `json:"wantBits,omitempty"`
}

func predToDTO(p query.Predicate) predDTO {
	return predDTO{
		Attr: p.Attr, Kind: int(p.Kind),
		Lo: fbits(p.Lo), Hi: fbits(p.Hi),
		LoIncl: p.LoIncl, HiIncl: p.HiIncl,
		Values: p.Values, BoolVal: p.BoolVal,
	}
}

func predFromDTO(d predDTO) (query.Predicate, error) {
	p := query.Predicate{
		Attr: d.Attr, Kind: query.PredKind(d.Kind),
		LoIncl: d.LoIncl, HiIncl: d.HiIncl,
		Values: d.Values, BoolVal: d.BoolVal,
	}
	var err error
	if d.Lo != "" {
		if p.Lo, err = parseFbits(d.Lo); err != nil {
			return p, err
		}
	}
	if d.Hi != "" {
		if p.Hi, err = parseFbits(d.Hi); err != nil {
			return p, err
		}
	}
	return p, nil
}

// countDTO is the predcount answer. Bits carries the selection bitmap
// (base64 over little-endian u64 words, tail bits zero) when the
// request asked for it; empty otherwise.
type countDTO struct {
	Count int    `json:"count"`
	Bits  string `json:"bits,omitempty"`
}

// encodeWords packs a bitmap's u64 words as base64 (little-endian).
func encodeWords(words []uint64) string {
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// decodeWords unpacks a base64 little-endian word stream.
func decodeWords(s string) ([]uint64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil || len(buf)%8 != 0 {
		return nil, fmt.Errorf("remote: bad bitmap encoding")
	}
	words := make([]uint64, len(buf)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return words, nil
}

// batchReqDTO is POST /shard/v1/batchstats: the attributes whose
// statistics the coordinator wants in one round trip.
type batchReqDTO struct {
	Attrs []string `json:"attrs"`
}

// batchStatDTO is one attribute's statistics in a batchstats answer.
// Numeric value streams live in the response's binary blob (Off/Count
// locate them) so floats travel exactly as the values endpoint sends
// them; categorical and boolean answers are small and inline.
type batchStatDTO struct {
	Attr string `json:"attr"`
	// Kind is "numeric", "cat" or "bool".
	Kind string `json:"kind"`
	// Off/Count locate a numeric attribute's float stream in the blob:
	// Count values at byte offset Off.
	Off    int      `json:"off,omitempty"`
	Count  int      `json:"count,omitempty"`
	Dict   []string `json:"dict,omitempty"`
	Counts []int    `json:"counts,omitempty"`
	Falses int      `json:"falses,omitempty"`
	Trues  int      `json:"trues,omitempty"`
}

// batchHeaderDTO is the JSON header of a batchstats response body.
type batchHeaderDTO struct {
	Stats []batchStatDTO `json:"stats"`
}

// encodeBatch frames a batchstats body: a u32 little-endian header
// length, the JSON header, then the binary blob of float streams.
func encodeBatch(hdr batchHeaderDTO, blob []byte) ([]byte, error) {
	hj, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 4+len(hj)+len(blob))
	binary.LittleEndian.PutUint32(out, uint32(len(hj)))
	copy(out[4:], hj)
	copy(out[4+len(hj):], blob)
	return out, nil
}

// decodeBatch unframes a batchstats body.
func decodeBatch(data []byte) (batchHeaderDTO, []byte, error) {
	var hdr batchHeaderDTO
	if len(data) < 4 {
		return hdr, nil, fmt.Errorf("remote: batch body of %d bytes has no header", len(data))
	}
	hl := int(binary.LittleEndian.Uint32(data))
	if hl < 0 || 4+hl > len(data) {
		return hdr, nil, fmt.Errorf("remote: batch header of %d bytes overflows %d-byte body", hl, len(data))
	}
	if err := json.Unmarshal(data[4:4+hl], &hdr); err != nil {
		return hdr, nil, fmt.Errorf("remote: batch header: %w", err)
	}
	return hdr, data[4+hl:], nil
}

// partialsReqDTO is POST /shard/v1/partials.
type partialsReqDTO struct {
	Specs []partialSpecDTO `json:"specs"`
}

type partialSpecDTO struct {
	Col     int    `json:"col"`
	Lo      string `json:"lo,omitempty"`
	Hi      string `json:"hi,omitempty"`
	UseHist bool   `json:"useHist,omitempty"`
}

// gkEntryDTO is one GK sketch tuple on the wire.
type gkEntryDTO struct {
	V     string `json:"v"`
	G     int    `json:"g"`
	Delta int    `json:"d,omitempty"`
}

// gkDTO serializes a finalized GK sketch.
type gkDTO struct {
	Eps     string       `json:"eps"`
	N       int          `json:"n"`
	Entries []gkEntryDTO `json:"entries"`
}

// partialDTO is one column's mergeable bundle on the wire (local
// dictionary space for CatCounts).
type partialDTO struct {
	Rows       int      `json:"rows"`
	Nulls      int      `json:"nulls,omitempty"`
	Count      int      `json:"count,omitempty"`
	Sum        string   `json:"sum,omitempty"`
	Min        string   `json:"min,omitempty"`
	Max        string   `json:"max,omitempty"`
	HasMinMax  bool     `json:"hasMinMax,omitempty"`
	HistEdges  []string `json:"histEdges,omitempty"`
	HistCounts []int    `json:"histCounts,omitempty"`
	GK         *gkDTO   `json:"gk,omitempty"`
	CatCounts  []int    `json:"catCounts,omitempty"`
	Falses     int      `json:"falses,omitempty"`
	Trues      int      `json:"trues,omitempty"`
}

func partialToDTO(p *shard.ColumnPartial) partialDTO {
	d := partialDTO{
		Rows: p.Rows, Nulls: p.Nulls, Count: p.Count,
		Sum: fbits(p.Sum), HasMinMax: p.HasMinMax,
		CatCounts: p.CatCounts, Falses: p.Falses, Trues: p.Trues,
	}
	if p.HasMinMax {
		d.Min, d.Max = fbits(p.Min), fbits(p.Max)
	}
	if p.Hist != nil {
		d.HistEdges = make([]string, len(p.Hist.Edges))
		for i, e := range p.Hist.Edges {
			d.HistEdges[i] = fbits(e)
		}
		d.HistCounts = p.Hist.Counts
	}
	if p.Quantiles != nil {
		n, entries := p.Quantiles.Export()
		g := &gkDTO{Eps: fbits(p.Quantiles.Epsilon()), N: n, Entries: make([]gkEntryDTO, len(entries))}
		for i, e := range entries {
			g.Entries[i] = gkEntryDTO{V: fbits(e.V), G: e.G, Delta: e.Delta}
		}
		d.GK = g
	}
	return d
}

func partialFromDTO(d partialDTO) (*shard.ColumnPartial, error) {
	p := &shard.ColumnPartial{
		Rows: d.Rows, Nulls: d.Nulls, Count: d.Count,
		HasMinMax: d.HasMinMax,
		CatCounts: d.CatCounts, Falses: d.Falses, Trues: d.Trues,
	}
	var err error
	if d.Sum != "" {
		if p.Sum, err = parseFbits(d.Sum); err != nil {
			return nil, err
		}
	}
	if d.HasMinMax {
		if p.Min, err = parseFbits(d.Min); err != nil {
			return nil, err
		}
		if p.Max, err = parseFbits(d.Max); err != nil {
			return nil, err
		}
	}
	if len(d.HistEdges) > 0 {
		if len(d.HistCounts) != len(d.HistEdges)-1 {
			return nil, fmt.Errorf("remote: histogram of %d edges with %d counts", len(d.HistEdges), len(d.HistCounts))
		}
		edges := make([]float64, len(d.HistEdges))
		for i, s := range d.HistEdges {
			if edges[i], err = parseFbits(s); err != nil {
				return nil, err
			}
		}
		p.Hist = &stats.Histogram{Edges: edges, Counts: d.HistCounts}
	}
	if d.GK != nil {
		eps, err := parseFbits(d.GK.Eps)
		if err != nil {
			return nil, err
		}
		entries := make([]sketch.GKEntry, len(d.GK.Entries))
		for i, e := range d.GK.Entries {
			v, err := parseFbits(e.V)
			if err != nil {
				return nil, err
			}
			entries[i] = sketch.GKEntry{V: v, G: e.G, Delta: e.Delta}
		}
		if p.Quantiles, err = sketch.GKFromEntries(eps, d.GK.N, entries); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// healthDTO is GET /shard/v1/health.
type healthDTO struct {
	OK    bool   `json:"ok"`
	Table string `json:"table"`
	Rows  int    `json:"rows"`
}

// shardStatsDTO is GET /shard/v1/stats: the shard server's own
// counters, one RPC per scrape. Plain integers (no float bit patterns:
// counters are exact by construction) plus the server's release
// version, so a fleet rollup can spot skew.
type shardStatsDTO struct {
	Table         string `json:"table"`
	Rows          int    `json:"rows"`
	Requests      int64  `json:"requests"`
	BytesOut      int64  `json:"bytesOut"`
	StatComputes  int64  `json:"statComputes"`
	ChunkServes   int64  `json:"chunkServes"`
	Draining      bool   `json:"draining,omitempty"`
	BytesRead     int64  `json:"bytesRead,omitempty"`
	ChunksDecoded int64  `json:"chunksDecoded,omitempty"`
	CacheHits     int64  `json:"cacheHits,omitempty"`
	CacheBytes    int64  `json:"cacheBytes,omitempty"`
	Version       string `json:"version,omitempty"`
}

// encodeFloats packs values as little-endian IEEE-754 bits — the binary
// body of the values endpoint.
func encodeFloats(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return buf
}

// decodeFloats unpacks a little-endian float stream.
func decodeFloats(buf []byte) ([]float64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("remote: float stream of %d bytes is not a multiple of 8", len(buf))
	}
	vals := make([]float64, len(buf)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return vals, nil
}
