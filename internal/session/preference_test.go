package session

import (
	"testing"

	"repro/internal/query"
)

func TestInterestAccumulatesOnDrillDown(t *testing.T) {
	s := newSession(t)
	if _, err := s.Explore(query.New("census")); err != nil {
		t.Fatal(err)
	}
	if len(s.Interest()) != 0 {
		t.Fatal("no interest before any drill-down")
	}
	node, _ := s.Current()
	// find the {age,sex} map and drill into it twice
	ageSexIdx := -1
	for i, m := range node.Result.Maps {
		if m.Key() == "age,sex" {
			ageSexIdx = i
		}
	}
	if ageSexIdx < 0 {
		t.Skip("no {age,sex} map on this seed")
	}
	if _, err := s.DrillDown(ageSexIdx, 0); err != nil {
		t.Fatal(err)
	}
	weights := s.Interest()
	if weights["age"] == 0 || weights["sex"] == 0 {
		t.Fatalf("weights = %v, want age and sex credited", weights)
	}
	if weights["education"] != 0 {
		t.Fatalf("education should have no weight, got %v", weights)
	}
}

func TestInterestDecays(t *testing.T) {
	s := newSession(t)
	s.recordInterest([]string{"a"})
	first := s.Interest()["a"]
	// repeatedly drilling elsewhere decays "a"
	for i := 0; i < 10; i++ {
		s.recordInterest([]string{"b"})
	}
	after := s.Interest()["a"]
	if after >= first {
		t.Fatalf("interest in a should decay: %v -> %v", first, after)
	}
	if s.Interest()["b"] <= s.Interest()["a"] {
		t.Fatal("recent interest should dominate")
	}
}

func TestPersonalizedMapsReorder(t *testing.T) {
	s := newSession(t)
	root, err := s.Explore(query.New("census"))
	if err != nil {
		t.Fatal(err)
	}
	res := root.Result
	if len(res.Maps) < 2 {
		t.Skip("need at least two maps")
	}
	// with no history the order is unchanged
	plain := s.PersonalizedMaps(res)
	for i := range plain {
		if plain[i] != res.Maps[i] {
			t.Fatal("no-history personalization must keep the ranking")
		}
	}
	// strongly prefer the attributes of the last map: it should rise
	last := res.Maps[len(res.Maps)-1]
	for i := 0; i < 20; i++ {
		s.recordInterest(last.Attrs)
	}
	personalized := s.PersonalizedMaps(res)
	newPos := -1
	for i, m := range personalized {
		if m == last {
			newPos = i
		}
	}
	if newPos >= len(res.Maps)-1 {
		t.Fatalf("preferred map did not rise: still at %d", newPos)
	}
	// the original result must not be mutated
	if res.Maps[len(res.Maps)-1] != last {
		t.Fatal("personalization mutated the result")
	}
}
