package session

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/query"
)

func TestPredCacheLRUEviction(t *testing.T) {
	tbl := datagen.Census(500, 1)
	c := newPredCache(2)
	p1 := query.NewRange("age", 20, 30)
	p2 := query.NewRange("age", 30, 40)
	p3 := query.NewRange("age", 40, 50)
	for _, p := range []query.Predicate{p1, p2, p3} {
		if _, err := c.getOrCompute(tbl, p, engine.ScanOptions{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// p1 is the least recently used: it must have been evicted.
	if _, ok := c.byKey[p1.String()]; ok {
		t.Error("p1 should have been evicted")
	}
	if _, ok := c.byKey[p3.String()]; !ok {
		t.Error("p3 should be cached")
	}
	// Touch p2, insert p1 again: p3 now evicts.
	if _, err := c.getOrCompute(tbl, p2, engine.ScanOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.getOrCompute(tbl, p1, engine.ScanOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.byKey[p3.String()]; ok {
		t.Error("p3 should have been evicted after p2 was touched")
	}
	hits, misses := c.stats()
	if hits != 1 || misses != 4 {
		t.Errorf("hits/misses = %d/%d, want 1/4", hits, misses)
	}
}

func TestPredCacheReturnsCorrectBitmaps(t *testing.T) {
	tbl := datagen.Census(1000, 1)
	c := newPredCache(8)
	p := query.NewRange("age", 25, 45)
	first, err := c.getOrCompute(tbl, p, engine.ScanOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.getOrCompute(tbl, p, engine.ScanOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("cache hit should return the identical vector")
	}
	if _, err := c.getOrCompute(tbl, query.NewRange("no_such", 0, 1), engine.ScanOptions{Workers: 1}); err == nil {
		t.Error("unknown attribute must error and not be cached")
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1 (errors are not cached)", c.len())
	}
}

// TestSessionDrillDownUsesPredCache: a drill-down re-uses the parent's
// predicate bitmaps and its results match an uncached cartographer run.
func TestSessionDrillDownUsesPredCache(t *testing.T) {
	tbl := datagen.Census(5000, 1)
	cart, err := core.NewCartographer(tbl, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := New(cart)
	root, err := s.Explore(query.New("census", query.NewRange("age", 20, 60)))
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Result.Maps) == 0 {
		t.Fatal("no maps at root")
	}
	if s.PredCacheSize() == 0 {
		t.Fatal("root exploration cached no predicate bitmaps")
	}
	node, err := s.DrillDown(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits, _ := s.PredCacheStats()
	if hits == 0 {
		t.Error("drill-down shares the parent predicate: expected cache hits")
	}
	// The drilled result must be identical to a fresh, uncached run.
	want, err := cart.Explore(node.Query)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderMaps(node.Result.Maps), renderMaps(want.Maps); got != want {
		t.Errorf("cached-base result differs from direct exploration:\n got: %s\nwant: %s", got, want)
	}
}

func renderMaps(maps []*core.Map) string {
	out := ""
	for _, m := range maps {
		out += m.String()
	}
	return out
}
