// Package session implements exploration sessions: the drill-down tree a
// user walks while "answering queries with queries" (Figure 1), a result
// cache, and the anticipative computation of Section 5.1 (precomputing
// the maps of regions the user is likely to open next during idle time).
package session

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obsv"
	"repro/internal/par"
	"repro/internal/query"
	"repro/internal/storage"
)

// Node is one step of the exploration: a query and its ranked maps.
type Node struct {
	// ID identifies the node within its session.
	ID int
	// Parent is the id of the node this one was drilled down from, or
	// -1 for a root exploration.
	Parent int
	// Query is the explored query.
	Query query.Query
	// Result holds the ranked maps for Query.
	Result *core.Result
	// Children lists nodes drilled down from this one.
	Children []int
}

// ShardLayout describes a sharded table to a session: the per-shard
// chunk-aware views and their row offsets in the combined table (see
// internal/shard.Set, which implements it). Sessions over a layout scan
// and cache predicate bitmaps per shard.
type ShardLayout interface {
	// NumShards returns the number of shards.
	NumShards() int
	// ShardTable returns shard i's view over the combined table's rows.
	ShardTable(i int) *storage.Table
	// ShardOffset returns shard i's first row in the combined table.
	ShardOffset(i int) int
}

// ShardPruner is the optional shard-file pruning interface of a layout
// (implemented by shard.Set from manifest v2 statistics): a false
// answer proves predicate p matches no row of shard i, letting the
// session skip the shard's predicate scan entirely — on memory-tiered
// sets, without even opening the shard's file.
type ShardPruner interface {
	ShardMayMatch(shard int, p query.Predicate) bool
}

// ShardPredCounter is the optional statistics-plane probe of a layout
// (implemented by shard.Set for shards served over the remote fabric):
// with ok=true it answers how many rows of shard i satisfy p, computed
// where the shard lives. The session consults it on predicate-bitmap
// cache misses of remote shards — a zero count yields the empty bitmap
// with no chunk payload ever crossing the wire, the per-predicate
// bitmap-count half of the fabric's statistics plane.
type ShardPredCounter interface {
	RemotePredicateCount(ctx context.Context, shard int, p query.Predicate) (count int, ok bool, err error)
}

// ShardPredBitmapper is the bitmap extension of ShardPredCounter
// (implemented by shard.Set against servers that answer predcount with
// wantBits): with ok=true the returned bitmap IS shard i's selection
// under p, computed where the shard lives and validated against the
// server's own count. The session prefers it on cache misses — then
// even non-empty predicates assemble without any chunk crossing the
// wire. ok=false (old servers, local shards) falls back to the counter
// and the scan.
type ShardPredBitmapper interface {
	RemotePredicateBits(ctx context.Context, shard int, p query.Predicate) (bm *bitvec.Vector, ok bool, err error)
}

// Session is a stateful exploration over one table. It is safe for
// concurrent use.
type Session struct {
	mu      sync.Mutex
	cart    *core.Cartographer
	nodes   []*Node
	current int
	cache   map[string]*core.Result
	// preds is the bounded LRU of per-predicate selection bitmaps: a
	// drill-down shares every predicate with its parent query, so its
	// base selection is assembled from cached bitmaps plus one new scan.
	// On sharded tables entries are keyed per (predicate, shard).
	preds *predCache
	// shards, when non-nil, fans base-selection assembly out per shard.
	shards ShardLayout
	// interest holds the decayed per-attribute weights behind
	// personalized ranking (see preference.go).
	interest map[string]float64
	// prefetch bookkeeping
	prefetching sync.WaitGroup
}

// New creates an empty session over the cartographer's table.
func New(cart *core.Cartographer) *Session {
	return &Session{
		cart:    cart,
		current: -1,
		cache:   map[string]*core.Result{},
		preds:   newPredCache(predCacheCapForRows(cart.Table().NumRows())),
	}
}

// NewSharded creates a session over a sharded table: cart must explore
// the layout's combined table. Base selections are assembled shard by
// shard — predicate scans run concurrently across shards and their
// bitmaps are cached in a per-shard keyed LRU, so a drill-down
// re-scans only the new predicate, and only shard-locally.
func NewSharded(cart *core.Cartographer, layout ShardLayout) *Session {
	s := New(cart)
	s.shards = layout
	s.preds = newPredCache(predCacheCapForShards(layout))
	return s
}

// explore runs one exploration, assembling the base selection from the
// per-predicate bitmap cache. Safe without s.mu: the predicate cache
// has its own lock and the Cartographer is concurrency-safe.
func (s *Session) explore(ctx context.Context, q query.Query) (*core.Result, error) {
	t := s.cart.Table()
	if q.Table != "" && q.Table != t.Name() {
		// Let the Cartographer surface its canonical mismatch error.
		return s.cart.ExploreCtx(ctx, q)
	}
	// Cache misses scan with the cartographer's scan options, keeping
	// the chunk-parallel sharding of Explore and feeding its cumulative
	// verdict counters.
	bctx, sp := obsv.StartSpan(ctx, "base")
	sopts := s.cart.ScanOptsCtx(bctx)
	if s.shards != nil {
		base, err := s.shardedBase(bctx, q, sopts)
		sp.End()
		if err != nil {
			return nil, err
		}
		return s.cart.ExploreSelCtx(ctx, q, base)
	}
	base := bitvec.NewFull(t.NumRows())
	for _, p := range q.Preds {
		if err := obsv.CheckCtx(bctx, "session.base"); err != nil {
			sp.End()
			return nil, err
		}
		bm, err := s.preds.getOrCompute(t, p, sopts)
		if err != nil {
			sp.End()
			return nil, err
		}
		base.And(bm)
		if !base.Any() {
			break
		}
	}
	sp.End()
	return s.cart.ExploreSelCtx(ctx, q, base)
}

// shardedBase assembles Eval(q) shard by shard: per shard, the cached
// (or freshly scanned) per-predicate bitmaps AND together into the
// shard's selection, and the shard selections blit into their row
// ranges of the combined bitmap. Shards fan out over up to workers
// goroutines; the assembled result is the exact concatenation, so it is
// identical at any shard count and parallelism.
func (s *Session) shardedBase(ctx context.Context, q query.Query, sopts engine.ScanOptions) (*bitvec.Vector, error) {
	n := s.shards.NumShards()
	pruner, _ := s.shards.(ShardPruner)
	counter, _ := s.shards.(ShardPredCounter)
	bitmapper, _ := s.shards.(ShardPredBitmapper)
	// Divide the worker budget: shards are the outer parallel axis; any
	// leftover workers shard each predicate scan chunk-wise.
	workers := sopts.Workers
	inner := sopts
	inner.Workers = workers / n
	if inner.Workers < 1 {
		inner.Workers = 1
	}
	sels := make([]*bitvec.Vector, n)
	err := par.For(workers, n, func(i int) error {
		// Per-shard-work-item cancellation: a dead caller abandons the
		// remaining shard assemblies before their scans or RPCs start.
		if err := obsv.CheckCtx(ctx, "session.base"); err != nil {
			return err
		}
		sctx, ssp := obsv.StartSpan(ctx, fmt.Sprintf("shard %d base", i))
		defer ssp.End()
		sopts := inner
		sopts.Ctx = sctx
		view := s.shards.ShardTable(i)
		sel := bitvec.NewFull(view.NumRows())
		for _, p := range q.Preds {
			if err := obsv.CheckCtx(sctx, "session.base"); err != nil {
				return err
			}
			if pruner != nil && !pruner.ShardMayMatch(i, p) {
				// Manifest statistics prove the predicate is disjoint with
				// this shard: empty selection, no scan, no file open.
				sel.Zero()
				break
			}
			bm, err := s.preds.getOrComputeShard(view, p, i, sopts, s.shardPredCompute(sctx, bitmapper, counter, view, p, i, sopts))
			if err != nil {
				return err
			}
			sel.And(bm)
			if !sel.Any() {
				break
			}
		}
		sels[i] = sel
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := bitvec.New(s.cart.Table().NumRows())
	for i, sel := range sels {
		base.OrBlit(s.shards.ShardOffset(i), sel)
	}
	return base, nil
}

// shardPredCompute builds the cache-miss evaluator of one (predicate,
// shard) bitmap. Layouts with a statistics plane (remote shards) are
// asked for the predicate's bitmap first — the whole selection crosses
// as packed words on the stats plane, so even non-empty predicates
// pull no chunk. Layouts with only a counter still get the empty fast
// path (a zero count proves the empty bitmap). A probe failure or an
// unsupporting server falls through to the ordinary scan (whose own
// error names the shard if it is really down). Local layouts get a nil
// compute, so the cache scans directly.
func (s *Session) shardPredCompute(ctx context.Context, bitmapper ShardPredBitmapper, counter ShardPredCounter, view *storage.Table, p query.Predicate, i int, opts engine.ScanOptions) func() (*bitvec.Vector, error) {
	if bitmapper == nil && counter == nil {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return func() (*bitvec.Vector, error) {
		if bitmapper != nil {
			if bm, ok, err := bitmapper.RemotePredicateBits(ctx, i, p); err == nil && ok {
				return bm, nil
			}
		} else if n, ok, err := counter.RemotePredicateCount(ctx, i, p); err == nil && ok && n == 0 {
			return bitvec.New(view.NumRows()), nil
		}
		return engine.EvalPredicateOpts(view, p, opts)
	}
}

// exploreLocked runs (or serves from cache) an exploration and appends a
// node. Caller holds s.mu.
func (s *Session) exploreLocked(ctx context.Context, q query.Query, parent int) (*Node, error) {
	res, err := s.resultFor(ctx, q)
	if err != nil {
		return nil, err
	}
	n := &Node{ID: len(s.nodes), Parent: parent, Query: q, Result: res}
	s.nodes = append(s.nodes, n)
	if parent >= 0 {
		s.nodes[parent].Children = append(s.nodes[parent].Children, n.ID)
	}
	s.current = n.ID
	return n, nil
}

// resultFor serves a result from the cache or computes and caches it.
// Caller holds s.mu; the pipeline runs without the lock would be nicer,
// but explorations are short and correctness is simpler this way.
func (s *Session) resultFor(ctx context.Context, q query.Query) (*core.Result, error) {
	key := q.String()
	if res, ok := s.cache[key]; ok {
		if sp := obsv.SpanFrom(ctx); sp != nil {
			sp.SetAttr("resultCached", true)
		}
		return res, nil
	}
	res, err := s.explore(ctx, q)
	if err != nil {
		return nil, err
	}
	s.cache[key] = res
	return res, nil
}

// Explore starts a new exploration root for q.
func (s *Session) Explore(q query.Query) (*Node, error) {
	return s.ExploreCtx(context.Background(), q)
}

// ExploreCtx is Explore with a request context: when ctx carries a
// trace span, the whole pipeline — base assembly included — records
// into it (see core.Cartographer.ExploreCtx).
func (s *Session) ExploreCtx(ctx context.Context, q query.Query) (*Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exploreLocked(ctx, q, -1)
}

// DrillDown explores region regionIdx of map mapIdx of the current
// node's result — the user "submitting one of the queries for further
// analysis".
func (s *Session) DrillDown(mapIdx, regionIdx int) (*Node, error) {
	return s.DrillDownCtx(context.Background(), mapIdx, regionIdx)
}

// DrillDownCtx is DrillDown with a request context (see ExploreCtx).
func (s *Session) DrillDownCtx(ctx context.Context, mapIdx, regionIdx int) (*Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, err := s.currentLocked()
	if err != nil {
		return nil, err
	}
	if mapIdx < 0 || mapIdx >= len(cur.Result.Maps) {
		return nil, fmt.Errorf("session: map index %d out of range (%d maps)", mapIdx, len(cur.Result.Maps))
	}
	m := cur.Result.Maps[mapIdx]
	if regionIdx < 0 || regionIdx >= len(m.Regions) {
		return nil, fmt.Errorf("session: region index %d out of range (%d regions)", regionIdx, len(m.Regions))
	}
	s.recordInterest(m.Attrs)
	return s.exploreLocked(ctx, m.Regions[regionIdx].Query, cur.ID)
}

// Back moves the cursor to the parent of the current node and returns it.
func (s *Session) Back() (*Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, err := s.currentLocked()
	if err != nil {
		return nil, err
	}
	if cur.Parent < 0 {
		return nil, fmt.Errorf("session: already at the root")
	}
	s.current = cur.Parent
	return s.nodes[s.current], nil
}

// Current returns the node the cursor is on.
func (s *Session) Current() (*Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.currentLocked()
}

func (s *Session) currentLocked() (*Node, error) {
	if s.current < 0 || s.current >= len(s.nodes) {
		return nil, fmt.Errorf("session: no exploration yet")
	}
	return s.nodes[s.current], nil
}

// Node returns the node with the given id.
func (s *Session) Node(id int) (*Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.nodes) {
		return nil, fmt.Errorf("session: no node %d", id)
	}
	return s.nodes[id], nil
}

// History returns every node in creation order.
func (s *Session) History() []*Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Node(nil), s.nodes...)
}

// CacheSize returns the number of cached exploration results.
func (s *Session) CacheSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// PredCacheSize returns the number of cached per-predicate bitmaps.
func (s *Session) PredCacheSize() int { return s.preds.len() }

// PredCacheStats returns the predicate-bitmap cache's (hits, misses).
func (s *Session) PredCacheStats() (hits, misses int) { return s.preds.stats() }

// Prefetch warms the cache with the explorations the user is most likely
// to ask for next: the regions of the current node's top maps, up to
// limit queries. It runs in background goroutines ("during the idle time
// between each query", Section 5.1) and returns immediately; Wait blocks
// until the warm-up finishes.
func (s *Session) Prefetch(limit int) {
	s.mu.Lock()
	cur, err := s.currentLocked()
	if err != nil {
		s.mu.Unlock()
		return
	}
	var todo []query.Query
	for _, m := range cur.Result.Maps {
		for _, r := range m.Regions {
			if len(todo) >= limit {
				break
			}
			if r.Count == 0 {
				continue
			}
			if _, cached := s.cache[r.Query.String()]; !cached {
				todo = append(todo, r.Query)
			}
		}
		if len(todo) >= limit {
			break
		}
	}
	s.mu.Unlock()

	for _, q := range todo {
		q := q
		s.prefetching.Add(1)
		go func() {
			defer s.prefetching.Done()
			res, err := s.explore(context.Background(), q)
			if err != nil {
				return // prefetch is best-effort
			}
			s.mu.Lock()
			if _, dup := s.cache[q.String()]; !dup {
				s.cache[q.String()] = res
			}
			s.mu.Unlock()
		}()
	}
}

// Wait blocks until all in-flight prefetches complete.
func (s *Session) Wait() { s.prefetching.Wait() }
