package session

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/shard"
)

func shardedFixture(t *testing.T, shards, workers int) (*Session, *Session) {
	t.Helper()
	tbl := datagen.Census(12_000, 9)
	dir := t.TempDir()
	path := filepath.Join(dir, "census.atlm")
	if _, err := shard.WriteSharded(path, tbl, shard.IngestOptions{Shards: shards, ChunkSize: 256}); err != nil {
		t.Fatal(err)
	}
	set, err := shard.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Parallelism = workers
	plainCart, err := core.NewCartographer(tbl, opts)
	if err != nil {
		t.Fatal(err)
	}
	shardCart, err := core.NewCartographerWith(set.Table(), opts, set.Provider(workers))
	if err != nil {
		t.Fatal(err)
	}
	return New(plainCart), NewSharded(shardCart, set)
}

// TestShardedSessionMatchesPlain: a sharded session walks the same
// drill-down tree to the same results as an unsharded one, while
// caching predicate bitmaps per shard.
func TestShardedSessionMatchesPlain(t *testing.T) {
	for _, cfg := range []struct{ shards, workers int }{{2, 1}, {4, 2}, {8, 8}} {
		plain, sharded := shardedFixture(t, cfg.shards, cfg.workers)
		q := query.New("census", query.NewRange("age", 20, 70))
		np, err := plain.Explore(q)
		if err != nil {
			t.Fatal(err)
		}
		ns, err := sharded.Explore(q)
		if err != nil {
			t.Fatal(err)
		}
		if np.Result.BaseCount != ns.Result.BaseCount {
			t.Fatalf("shards=%d workers=%d: base %d vs %d", cfg.shards, cfg.workers, np.Result.BaseCount, ns.Result.BaseCount)
		}
		if len(np.Result.Maps) == 0 {
			t.Fatal("no maps")
		}
		for mi, m := range np.Result.Maps {
			if got := ns.Result.Maps[mi].String(); got != m.String() {
				t.Fatalf("shards=%d workers=%d map %d:\n got: %s\nwant: %s", cfg.shards, cfg.workers, mi, got, m.String())
			}
		}
		// Drill into the same region on both sessions.
		dp, err := plain.DrillDown(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := sharded.DrillDown(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Result.BaseCount != ds.Result.BaseCount {
			t.Fatalf("drill base %d vs %d", dp.Result.BaseCount, ds.Result.BaseCount)
		}
		// The sharded predicate cache is keyed per (predicate, shard):
		// the root query's predicate appears once per shard.
		if got := sharded.PredCacheSize(); got < cfg.shards {
			t.Errorf("sharded pred cache holds %d entries, want >= %d", got, cfg.shards)
		}
		// Drilling re-used the parent's cached shard bitmaps.
		if hits, _ := sharded.PredCacheStats(); hits < cfg.shards {
			t.Errorf("drill-down hit %d cached shard bitmaps, want >= %d", hits, cfg.shards)
		}
	}
}

// TestShardedSessionNoPredicates: an unfiltered exploration selects
// every row through the per-shard assembly.
func TestShardedSessionNoPredicates(t *testing.T) {
	_, sharded := shardedFixture(t, 4, 2)
	n, err := sharded.Explore(query.New("census"))
	if err != nil {
		t.Fatal(err)
	}
	if n.Result.BaseCount != n.Result.TotalRows {
		t.Fatalf("base %d, want all %d rows", n.Result.BaseCount, n.Result.TotalRows)
	}
}
