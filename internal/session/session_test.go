package session

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/query"
)

func newSession(t testing.TB) *Session {
	t.Helper()
	tbl := datagen.Census(5000, 1)
	cart, err := core.NewCartographer(tbl, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return New(cart)
}

func TestSessionExploreAndCurrent(t *testing.T) {
	s := newSession(t)
	if _, err := s.Current(); err == nil {
		t.Fatal("empty session should have no current node")
	}
	n, err := s.Explore(query.New("census"))
	if err != nil {
		t.Fatal(err)
	}
	if n.ID != 0 || n.Parent != -1 {
		t.Fatalf("node = %+v", n)
	}
	if len(n.Result.Maps) == 0 {
		t.Fatal("no maps")
	}
	cur, err := s.Current()
	if err != nil || cur.ID != 0 {
		t.Fatal("current should be the root")
	}
}

func TestSessionDrillDownAndBack(t *testing.T) {
	s := newSession(t)
	root, err := s.Explore(query.New("census"))
	if err != nil {
		t.Fatal(err)
	}
	child, err := s.DrillDown(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if child.Parent != root.ID {
		t.Fatal("parent link wrong")
	}
	if child.Query.Equal(root.Query) {
		t.Fatal("drill-down should narrow the query")
	}
	// the root now lists the child
	r2, _ := s.Node(root.ID)
	if len(r2.Children) != 1 || r2.Children[0] != child.ID {
		t.Fatalf("children = %v", r2.Children)
	}
	back, err := s.Back()
	if err != nil || back.ID != root.ID {
		t.Fatal("Back should return to the root")
	}
	if _, err := s.Back(); err == nil {
		t.Fatal("Back at root should error")
	}
}

func TestSessionDrillDownValidation(t *testing.T) {
	s := newSession(t)
	if _, err := s.DrillDown(0, 0); err == nil {
		t.Fatal("drill-down before explore should error")
	}
	if _, err := s.Explore(query.New("census")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DrillDown(99, 0); err == nil {
		t.Fatal("bad map index")
	}
	if _, err := s.DrillDown(0, 99); err == nil {
		t.Fatal("bad region index")
	}
	if _, err := s.Node(42); err == nil {
		t.Fatal("bad node id")
	}
}

func TestSessionHistory(t *testing.T) {
	s := newSession(t)
	if _, err := s.Explore(query.New("census")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DrillDown(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DrillDown(0, 0); err != nil {
		t.Fatal(err)
	}
	h := s.History()
	if len(h) != 3 {
		t.Fatalf("history = %d nodes", len(h))
	}
	for i, n := range h {
		if n.ID != i {
			t.Fatal("history order wrong")
		}
	}
}

func TestSessionCacheHit(t *testing.T) {
	s := newSession(t)
	if _, err := s.Explore(query.New("census")); err != nil {
		t.Fatal(err)
	}
	size := s.CacheSize()
	// exploring the same query again must hit the cache
	n2, err := s.Explore(query.New("census"))
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheSize() != size {
		t.Fatal("repeat exploration should not grow the cache")
	}
	if n2.ID == 0 {
		t.Fatal("repeat exploration still creates a node")
	}
}

func TestSessionPrefetchWarmsCache(t *testing.T) {
	s := newSession(t)
	if _, err := s.Explore(query.New("census")); err != nil {
		t.Fatal(err)
	}
	before := s.CacheSize()
	s.Prefetch(3)
	s.Wait()
	after := s.CacheSize()
	if after <= before {
		t.Fatalf("prefetch did not warm the cache: %d -> %d", before, after)
	}
	if after > before+3 {
		t.Fatalf("prefetch exceeded limit: %d -> %d", before, after)
	}
	// drilling into a prefetched region must not grow the cache
	cur, _ := s.Current()
	var mapIdx, regionIdx = -1, -1
	for mi, m := range cur.Result.Maps {
		for ri, r := range m.Regions {
			if _, ok := prefetchedRegion(s, r.Query.String()); ok {
				mapIdx, regionIdx = mi, ri
				break
			}
		}
		if mapIdx >= 0 {
			break
		}
	}
	if mapIdx < 0 {
		t.Skip("no prefetched region found")
	}
	sizeBefore := s.CacheSize()
	if _, err := s.DrillDown(mapIdx, regionIdx); err != nil {
		t.Fatal(err)
	}
	if s.CacheSize() != sizeBefore {
		t.Fatal("drill-down into prefetched region should hit the cache")
	}
}

func prefetchedRegion(s *Session, key string) (*core.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.cache[key]
	return r, ok
}

func TestSessionPrefetchBeforeExploreIsNoop(t *testing.T) {
	s := newSession(t)
	s.Prefetch(5)
	s.Wait()
	if s.CacheSize() != 0 {
		t.Fatal("prefetch on empty session should do nothing")
	}
}
