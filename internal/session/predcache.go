package session

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/storage"
)

const (
	// predCacheBudgetBytes bounds the memory one session's predicate
	// bitmaps may pin. The entry capacity is derived from the table's
	// bitmap size, so the bound holds at any table scale instead of
	// growing linearly with rows.
	predCacheBudgetBytes = 8 << 20
	// predCacheMaxEntries caps the entry count on small tables, where
	// the byte budget alone would allow thousands of entries.
	predCacheMaxEntries = 64
)

// predCacheCapForRows derives the entry capacity for a table size from
// the byte budget: at least 1 (so drill-downs always share the parent's
// newest predicate), at most predCacheMaxEntries.
func predCacheCapForRows(rows int) int {
	bitmapBytes := rows/8 + 1
	c := predCacheBudgetBytes / bitmapBytes
	if c < 1 {
		return 1
	}
	if c > predCacheMaxEntries {
		return predCacheMaxEntries
	}
	return c
}

// predCacheCapForShards derives the entry capacity for a sharded table:
// entries are per (predicate, shard) — one shard's bitmap each — so the
// byte budget divides by the largest shard's bitmap, and the floor of
// one entry per shard keeps a whole predicate's bitmaps resident.
func predCacheCapForShards(layout ShardLayout) int {
	n := layout.NumShards()
	maxRows := 0
	for i := 0; i < n; i++ {
		if r := layout.ShardTable(i).NumRows(); r > maxRows {
			maxRows = r
		}
	}
	bitmapBytes := maxRows/8 + 1
	c := predCacheBudgetBytes / bitmapBytes
	if c < n {
		c = n
	}
	if c > predCacheMaxEntries*n {
		c = predCacheMaxEntries * n
	}
	return c
}

// predCache is a bounded LRU of per-predicate selection bitmaps, keyed
// by the predicate's canonical CQL rendering. Sessions assemble a
// query's base selection by ANDing cached predicate bitmaps, so a
// drill-down (parent query plus one new predicate) re-evaluates only the
// new predicate instead of rescanning the whole conjunction — the
// predicate-level counterpart of the whole-result cache.
//
// Cached vectors are read-only; callers AND them into their own scratch
// vectors. The cache is safe for concurrent use (explorations and
// anticipative prefetches share it).
type predCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recently used
	byKey map[string]*list.Element // value type: *predEntry

	hits, misses int
}

type predEntry struct {
	key  string
	bits *bitvec.Vector
}

func newPredCache(capacity int) *predCache {
	if capacity < 1 {
		capacity = 1
	}
	return &predCache{cap: capacity, order: list.New(), byKey: map[string]*list.Element{}}
}

// getOrCompute returns the cached bitmap for p over the whole table,
// evaluating and caching it on a miss. Misses scan with the given scan
// options (chunk-parallel on chunked tables, verdict counters shared
// with the session's Cartographer). The returned vector must be
// treated as read-only.
func (c *predCache) getOrCompute(t *storage.Table, p query.Predicate, opts engine.ScanOptions) (*bitvec.Vector, error) {
	return c.getOrComputeKeyed(t, p, opts, p.String(), nil)
}

// getOrComputeShard is getOrCompute for one shard of a sharded table:
// the entry is keyed by (predicate, shard), so each shard's bitmap is
// computed against its own view, cached and evicted independently — the
// granularity a multi-backend deployment needs, where a shard's bitmap
// is only valid on the backend holding that shard. compute, when
// non-nil, replaces the default predicate scan on a miss (remote shards
// consult their statistics plane first).
func (c *predCache) getOrComputeShard(view *storage.Table, p query.Predicate, shard int, opts engine.ScanOptions, compute func() (*bitvec.Vector, error)) (*bitvec.Vector, error) {
	return c.getOrComputeKeyed(view, p, opts, fmt.Sprintf("%d|%s", shard, p.String()), compute)
}

func (c *predCache) getOrComputeKeyed(t *storage.Table, p query.Predicate, opts engine.ScanOptions, key string, compute func() (*bitvec.Vector, error)) (*bitvec.Vector, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		bits := el.Value.(*predEntry).bits
		c.mu.Unlock()
		return bits, nil
	}
	c.misses++
	c.mu.Unlock()

	// Evaluate outside the lock: predicate scans are the expensive part
	// and must not serialize concurrent prefetches.
	if compute == nil {
		compute = func() (*bitvec.Vector, error) { return engine.EvalPredicateOpts(t, p, opts) }
	}
	bits, err := compute()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// A concurrent caller computed it first; keep theirs.
		c.order.MoveToFront(el)
		return el.Value.(*predEntry).bits, nil
	}
	c.byKey[key] = c.order.PushFront(&predEntry{key: key, bits: bits})
	if c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*predEntry).key)
	}
	return bits, nil
}

// len returns the number of cached predicate bitmaps.
func (c *predCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// stats returns (hits, misses) so far.
func (c *predCache) stats() (int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
