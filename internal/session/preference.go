package session

import (
	"math"
	"sort"

	"repro/internal/core"
)

// This file implements the Section 5.2 "personalized sessions" sketch:
// "what is proposed depends on the past behavior of the user". The
// session keeps a decayed interest weight per attribute, incremented
// whenever the user drills into a region cut on that attribute, and
// PersonalizedMaps re-orders a result's maps by entropy boosted with the
// accumulated interest.

// interestDecay is applied to all weights on every drill-down so that
// old interests fade (a user switching topics is not chained to the
// past).
const interestDecay = 0.9

// interestBoost scales how strongly learned interest bends the entropy
// ranking.
const interestBoost = 0.5

// recordInterest notes that the user opened a region of a map cut on
// these attributes. Caller holds s.mu.
func (s *Session) recordInterest(attrs []string) {
	if s.interest == nil {
		s.interest = map[string]float64{}
	}
	for a := range s.interest {
		s.interest[a] *= interestDecay
	}
	for _, a := range attrs {
		s.interest[a] += 1
	}
}

// Interest returns the current attribute interest weights (copy).
func (s *Session) Interest() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.interest))
	for a, w := range s.interest {
		out[a] = w
	}
	return out
}

// PersonalizedMaps returns the result's maps re-ranked for this user:
// each map's entropy score is multiplied by 1 + boost·interest, where
// interest is the mean learned weight of the map's attributes (squashed
// to [0,1)). With no history the order is unchanged.
func (s *Session) PersonalizedMaps(res *core.Result) []*core.Map {
	s.mu.Lock()
	weights := make(map[string]float64, len(s.interest))
	for a, w := range s.interest {
		weights[a] = w
	}
	s.mu.Unlock()

	maps := append([]*core.Map(nil), res.Maps...)
	if len(weights) == 0 {
		return maps
	}
	score := func(m *core.Map) float64 {
		sum := 0.0
		for _, a := range m.Attrs {
			sum += weights[a]
		}
		mean := sum / float64(len(m.Attrs))
		squash := 1 - math.Exp(-mean) // [0,1)
		return m.Entropy * (1 + interestBoost*squash)
	}
	sort.SliceStable(maps, func(i, j int) bool {
		si, sj := score(maps[i]), score(maps[j])
		if si != sj {
			return si > sj
		}
		return maps[i].Key() < maps[j].Key()
	})
	return maps
}
