package atlas

// Acceptance tests for the memory-tiered store: a lazily opened store
// (chunks decoding on first touch through a bounded cache) must be
// indistinguishable from the eager decode — Explore output
// byte-identical across shard counts, parallelism settings and cache
// budgets, including a thrash-sized budget of about one chunk.

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestLazyExploreByteIdentical is the acceptance bar for the memory
// tiers: (shards ∈ {1,4}) × (parallelism ∈ {1,8}) × (cache budget ∈
// {unbounded, ~1 chunk}) must all reproduce the in-memory exploration
// byte for byte.
func TestLazyExploreByteIdentical(t *testing.T) {
	tbl := CensusDataset(20_000, 3)
	cql := "EXPLORE census WHERE age BETWEEN 20 AND 70"
	dir := t.TempDir()

	stores := map[string]string{}
	single := filepath.Join(dir, "census.atl")
	if err := SaveStore(tbl, single); err != nil {
		t.Fatal(err)
	}
	stores["shards=1"] = single
	sharded := filepath.Join(dir, "census.atlm")
	if err := SaveSharded(tbl, sharded, ShardIngestOptions{Shards: 4, ChunkSize: 512}); err != nil {
		t.Fatal(err)
	}
	stores["shards=4"] = sharded

	for _, parallelism := range []int{1, 8} {
		opts := DefaultOptions()
		opts.Parallelism = parallelism
		exPlain, err := New(tbl, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := exPlain.Explore(cql)
		if err != nil {
			t.Fatal(err)
		}
		for label, path := range stores {
			for _, budget := range []struct {
				name  string
				bytes int64
			}{
				{"unbounded", -1},
				{"1chunk", 4600}, // ≈ one 512-row numeric chunk
			} {
				for _, deferred := range []bool{false, true} {
					if deferred && label == "shards=1" {
						continue // Defer applies to sharded stores
					}
					name := label + "/" + budget.name + "/parallel=" + strconv.Itoa(parallelism)
					if deferred {
						name += "/deferred"
					}
					handle, err := OpenStoreWith(path, StoreOpenOptions{
						Lazy: true, CacheBytes: budget.bytes, Defer: deferred,
					})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if !handle.Lazy() {
						t.Fatalf("%s: store did not open lazily", name)
					}
					ex, err := handle.NewExplorer(opts)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					got, err := ex.Explore(cql)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if g, w := stripTiming(FormatResult(got)), stripTiming(FormatResult(want)); g != w {
						t.Errorf("%s: lazy result differs:\n got: %s\nwant: %s", name, g, w)
					}
					if sn := ex.ScanStats(); sn.ChunksPruned == 0 && sn.ChunksScanned == 0 {
						t.Errorf("%s: no scan decisions recorded", name)
					}
					if err := handle.Close(); err != nil {
						t.Errorf("%s: close: %v", name, err)
					}
				}
			}
		}
	}
}

// TestLazyStoreCorruptExploreError: an Explore touching a corrupt chunk
// must fail with the named chunk error — never panic, never return
// silently wrong maps.
func TestLazyStoreCorruptExploreError(t *testing.T) {
	tbl := CensusDataset(5_000, 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "census.atl")
	if err := SaveStore(tbl, path); err != nil {
		t.Fatal(err)
	}
	corruptFirstValueChunk(t, path)
	handle, err := OpenStoreWith(path, StoreOpenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err) // metadata intact; corruption is in the values
	}
	defer handle.Close()
	ex, err := handle.NewExplorer(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, err = ex.Explore("EXPLORE census WHERE age BETWEEN 20 AND 70")
	if err == nil {
		t.Fatal("explore over a corrupt lazy store returned no error")
	}
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("error should name the chunk checksum failure, got: %v", err)
	}
}

// corruptFirstValueChunk flips one byte in the middle of the file's
// value region and reseals the trailer CRC, so only the per-chunk CRC
// of the unlucky chunk trips — on first touch, not at open.
func corruptFirstValueChunk(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	sum := crc32.ChecksumIEEE(data[:len(data)-4])
	binary.LittleEndian.PutUint32(data[len(data)-4:], sum)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
