package atlas

// Acceptance tests for the sharded atlas: a table split across N shard
// files must be indistinguishable from the unsharded table — Explore
// output byte-identical at every (shard count, parallelism) pair — while
// ingest, open and sessions all run through the public facade.

import (
	"path/filepath"
	"testing"
)

func writeShardedCensus(t *testing.T, tbl *Table, o ShardIngestOptions) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "census.atlm")
	if err := SaveSharded(tbl, path, o); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestShardedExploreByteIdentical is the acceptance bar: Explore over a
// shard set equals Explore over the unsharded table, for 1/2/4/8 shards
// at parallelism 1/2/8.
func TestShardedExploreByteIdentical(t *testing.T) {
	tbl := CensusDataset(20_000, 3)
	cql := "EXPLORE census WHERE age BETWEEN 20 AND 70"
	for _, shards := range []int{1, 2, 4, 8} {
		path := writeShardedCensus(t, tbl, ShardIngestOptions{Shards: shards, ChunkSize: 512})
		st, err := OpenSharded(path)
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 && st.NumShards() != shards {
			t.Fatalf("opened %d shards, want %d", st.NumShards(), shards)
		}
		for _, parallelism := range []int{1, 2, 8} {
			opts := DefaultOptions()
			opts.Parallelism = parallelism
			exPlain, err := New(tbl, opts)
			if err != nil {
				t.Fatal(err)
			}
			exShard, err := NewSharded(st, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := exPlain.Explore(cql)
			if err != nil {
				t.Fatal(err)
			}
			got, err := exShard.Explore(cql)
			if err != nil {
				t.Fatal(err)
			}
			if got.BaseCount != want.BaseCount || got.TotalRows != want.TotalRows {
				t.Fatalf("shards=%d parallelism=%d: counts differ", shards, parallelism)
			}
			if g, w := stripTiming(FormatResult(got)), stripTiming(FormatResult(want)); g != w {
				t.Errorf("shards=%d parallelism=%d: sharded result differs:\n got: %s\nwant: %s",
					shards, parallelism, g, w)
			}
		}
	}
}

// TestShardedSessionFacade: sessions over a sharded explorer drill to
// the same results as over the plain table.
func TestShardedSessionFacade(t *testing.T) {
	tbl := CensusDataset(10_000, 5)
	path := writeShardedCensus(t, tbl, ShardIngestOptions{Shards: 4, ChunkSize: 256})
	st, err := OpenSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	exPlain, err := New(tbl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	exShard, err := NewSharded(st, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q, err := exShard.ParseQuery("EXPLORE census")
	if err != nil {
		t.Fatal(err)
	}
	sp := exPlain.NewSession()
	ss := exShard.NewSession()
	np, err := sp.Explore(q)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := ss.Explore(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(np.Result.Maps) == 0 {
		t.Fatal("no maps")
	}
	if g, w := stripTiming(FormatResult(ns.Result)), stripTiming(FormatResult(np.Result)); g != w {
		t.Errorf("sharded session explore differs:\n got: %s\nwant: %s", g, w)
	}
	dp, err := sp.DrillDown(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ss.DrillDown(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := stripTiming(FormatResult(ds.Result)), stripTiming(FormatResult(dp.Result)); g != w {
		t.Errorf("sharded drill-down differs:\n got: %s\nwant: %s", g, w)
	}
}

// TestShardedHashIngestFacade: hash partitioning through the facade
// keeps all rows and explores cleanly.
func TestShardedHashIngestFacade(t *testing.T) {
	tbl := CensusDataset(8_000, 7)
	path := writeShardedCensus(t, tbl, ShardIngestOptions{Shards: 4, HashKey: "education", ChunkSize: 256})
	if !IsShardManifest(path) {
		t.Fatal("manifest not detected")
	}
	st, err := OpenSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Table().NumRows() != tbl.NumRows() {
		t.Fatalf("rows %d, want %d", st.Table().NumRows(), tbl.NumRows())
	}
	ex, err := NewSharded(st, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Explore("EXPLORE census")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Maps) == 0 || res.BaseCount != tbl.NumRows() {
		t.Fatalf("hash-sharded explore: %d maps, base %d", len(res.Maps), res.BaseCount)
	}
}

// TestIsShardManifestOnStore: a single-file store is not a manifest.
func TestIsShardManifestOnStore(t *testing.T) {
	tbl := CensusDataset(1_000, 1)
	path := filepath.Join(t.TempDir(), "census.atl")
	if err := SaveStore(tbl, path); err != nil {
		t.Fatal(err)
	}
	if IsShardManifest(path) {
		t.Error("single-file store detected as manifest")
	}
}
