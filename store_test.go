package atlas

// Property-style round-trip tests for the on-disk columnar store: the
// acceptance bar is that a store-backed table is indistinguishable from
// a CSV-loaded one — byte-identical Explore output at any parallelism —
// while scanning fewer chunks thanks to zone maps.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/colstore"
	"repro/internal/storage"
)

// storeCSVTables runs one table through CSV and through CSV→store,
// returning both loads.
func storeCSVTables(t *testing.T, src *Table, chunkSize int) (fromCSV, fromStore *Table) {
	t.Helper()
	var csvBuf bytes.Buffer
	if err := WriteCSV(src, &csvBuf); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := LoadCSV(src.Name(), bytes.NewReader(csvBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "t.atl")
	if err := colstore.WriteFile(path, fromCSV, chunkSize); err != nil {
		t.Fatal(err)
	}
	fromStore, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	return fromCSV, fromStore
}

// TestStoreExploreByteIdentical is the acceptance test: CSV→store→Table
// yields byte-identical Explore output vs. direct CSV load, across
// parallelism settings.
func TestStoreExploreByteIdentical(t *testing.T) {
	datasets := []struct {
		name string
		tbl  *Table
		cql  string
	}{
		{"census", CensusDataset(20000, 3), "EXPLORE census WHERE age BETWEEN 20 AND 70"},
		{"census-all", CensusDataset(12345, 7), "EXPLORE census"},
		{"sky", SkySurveyDataset(8000, 5), "EXPLORE sky"},
	}
	for _, ds := range datasets {
		t.Run(ds.name, func(t *testing.T) {
			fromCSV, fromStore := storeCSVTables(t, ds.tbl, 1024)
			if fromStore.Chunking() == nil {
				t.Fatal("store table lost chunk metadata")
			}
			for _, parallelism := range []int{1, 2, 8, 0} {
				opts := DefaultOptions()
				opts.Parallelism = parallelism
				exCSV, err := New(fromCSV, opts)
				if err != nil {
					t.Fatal(err)
				}
				exStore, err := New(fromStore, opts)
				if err != nil {
					t.Fatal(err)
				}
				resCSV, err := exCSV.Explore(ds.cql)
				if err != nil {
					t.Fatal(err)
				}
				resStore, err := exStore.Explore(ds.cql)
				if err != nil {
					t.Fatal(err)
				}
				got := FormatResult(resStore)
				want := FormatResult(resCSV)
				// Elapsed differs run to run; compare everything after the
				// timing line plus the structural counts.
				if resStore.BaseCount != resCSV.BaseCount || resStore.TotalRows != resCSV.TotalRows {
					t.Fatalf("parallelism %d: counts differ: %d/%d vs %d/%d", parallelism,
						resStore.BaseCount, resStore.TotalRows, resCSV.BaseCount, resCSV.TotalRows)
				}
				if g, w := stripTiming(got), stripTiming(want); g != w {
					t.Errorf("parallelism %d: store-backed result differs:\n got: %s\nwant: %s", parallelism, g, w)
				}
			}
		})
	}
}

// stripTiming removes the per-run timing suffix from FormatResult's
// second line so byte comparison covers everything deterministic.
func stripTiming(s string) string {
	lines := strings.SplitN(s, "\n", 3)
	if len(lines) >= 2 {
		if i := strings.LastIndex(lines[1], " in "); i >= 0 {
			lines[1] = lines[1][:i]
		}
	}
	return strings.Join(lines, "\n")
}

// TestStoreRoundTripCells: CSV→store→Table preserves every cell,
// including NULLs, empty-looking strings and unicode categories.
func TestStoreRoundTripCells(t *testing.T) {
	var b strings.Builder
	b.WriteString("name,score,age,tag\n")
	names := []string{"zoë", "Ōtawara", "漢字", "emoji🚀", "plain"}
	for i := 0; i < 3000; i++ {
		name := names[i%len(names)]
		score := fmt.Sprintf("%.3f", float64(i)/17)
		age := fmt.Sprintf("%d", 18+i%60)
		tag := fmt.Sprintf("t%d", i%7)
		if i%13 == 2 {
			score = "" // NULL
		}
		if i%19 == 4 {
			name = "" // NULL (CSV cannot express empty-vs-NULL; both read as NULL)
		}
		fmt.Fprintf(&b, "%s,%s,%s,%s\n", name, score, age, tag)
	}
	fromCSV, err := LoadCSV("u", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := colstore.Write(&buf, fromCSV, 256); err != nil {
		t.Fatal(err)
	}
	st, err := colstore.Read(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	fromStore := st.Table()
	for c := 0; c < fromCSV.NumCols(); c++ {
		for r := 0; r < fromCSV.NumRows(); r++ {
			gv := fromStore.Column(c).Value(r)
			wv := fromCSV.Column(c).Value(r)
			if !reflect.DeepEqual(gv, wv) {
				t.Fatalf("col %d row %d: %v != %v", c, r, gv, wv)
			}
		}
	}
	// Empty string as a *value* (not NULL) only exists on the direct
	// table→store path; check it survives too.
	schema := storage.MustSchema(storage.Field{Name: "s", Type: storage.String})
	sb := storage.NewBuilder("e", schema)
	sb.MustAppendRow("")
	sb.MustAppendRow(nil)
	sb.MustAppendRow("x")
	direct := sb.MustBuild()
	var buf2 bytes.Buffer
	if err := colstore.Write(&buf2, direct, 64); err != nil {
		t.Fatal(err)
	}
	st2, err := colstore.Read(buf2.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got := st2.Table().Column(0)
	if got.Value(0) != "" || got.IsNull(0) {
		t.Error("empty string value became NULL")
	}
	if !got.IsNull(1) {
		t.Error("NULL became non-NULL")
	}
	if got.Value(2) != "x" {
		t.Error("string value lost")
	}
}

// TestSaveOpenStoreFacade exercises the public SaveStore/OpenStore pair.
func TestSaveOpenStoreFacade(t *testing.T) {
	tbl := CensusDataset(5000, 9)
	path := filepath.Join(t.TempDir(), "census.atl")
	if err := SaveStore(tbl, path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != tbl.Name() || got.NumRows() != tbl.NumRows() {
		t.Fatalf("reopened table = %q/%d rows", got.Name(), got.NumRows())
	}
	if got.Chunking() == nil {
		t.Fatal("reopened table is not chunk-aware")
	}
	ex, err := New(got, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Explore("EXPLORE census")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Maps) == 0 {
		t.Fatal("no maps from store-backed exploration")
	}
}
