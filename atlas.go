// Package atlas is the public API of this repository: a Go implementation
// of Atlas, the database-exploration front-end of Sellam & Kersten, "Fast
// Cartography for Data Explorers" (PVLDB 6(12), 2013).
//
// Atlas answers queries with queries: instead of returning tuples, an
// exploration returns a ranked list of data maps — small sets of simple
// conjunctive queries, each describing a coherent region of the data. The
// user picks a region and drills down, or asks for the next map.
//
// Quick start:
//
//	table := atlas.CensusDataset(50_000, 1)
//	ex, err := atlas.New(table, atlas.DefaultOptions())
//	if err != nil { ... }
//	res, err := ex.Explore("EXPLORE census WHERE age BETWEEN 17 AND 90")
//	if err != nil { ... }
//	for _, m := range res.Maps {
//	    fmt.Print(m)
//	}
//
// The pipeline implements the paper's Section 3 framework: the CUT
// primitive over every usable attribute, dependency clustering of the
// resulting candidate maps (variation of information + SLINK), per-cluster
// merging (product or composition) and entropy ranking — plus the
// Section 5 extensions: sketch-accelerated cuts, sampling with an anytime
// loop, anticipative session caching, FK-join exploration and
// high-cardinality column screening.
//
// # Performance
//
// The pipeline's embarrassingly parallel stages — candidate cuts per
// attribute, pairwise map distances and per-cluster merges — fan out
// over a bounded worker pool sized by Options.Parallelism (0, the
// default, uses runtime.GOMAXPROCS(0); 1 forces a serial run). Results
// are collected by index, so the ranked answer is byte-for-byte
// identical at any parallelism.
//
// Each Explorer also keeps a per-table column-stat cache: sorted numeric
// values, quantile sketches and category counts under the full
// selection, computed once and shared read-only across goroutines,
// repeated Explore calls, sessions and anytime rounds. Explorers (and
// the underlying Cartographer) are safe for concurrent use.
//
// Tables too big (or too hot) for one file can be sharded: SaveSharded
// splits a table across several store files plus a manifest, and
// NewSharded(OpenSharded(path), opts) explores the set with per-shard
// fan-out — results byte-identical to the unsharded table at any shard
// count and parallelism.
package atlas

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/obsv"
	"repro/internal/query"
	"repro/internal/remote"
	"repro/internal/sample"
	"repro/internal/session"
	"repro/internal/shard"
	"repro/internal/storage"
)

// Re-exported core types. The facade keeps downstream imports to a single
// package; the aliased types are documented in their home packages.
type (
	// Table is an immutable columnar table.
	Table = storage.Table
	// Schema describes a table's fields.
	Schema = storage.Schema
	// Field is one named, typed column of a schema.
	Field = storage.Field
	// Query is a conjunction of predicates over one table.
	Query = query.Query
	// Predicate restricts a single attribute.
	Predicate = query.Predicate
	// Map is a data map: disjoint region queries plus their covers.
	Map = core.Map
	// Region is one query of a map with its measured extent.
	Region = core.Region
	// Result is the ranked answer to one exploration.
	Result = core.Result
	// Options configures the map-generation pipeline.
	Options = core.Options
	// AnytimeOptions tunes progressive (sampled) exploration.
	AnytimeOptions = core.AnytimeOptions
	// AnytimeResult is the outcome of a progressive exploration.
	AnytimeResult = core.AnytimeResult
	// Session is a stateful drill-down exploration.
	Session = session.Session
	// Node is one step of a session.
	Node = session.Node
	// SpanProfile is one node of a profiled exploration's span tree:
	// name, offset and duration in nanoseconds from the trace start,
	// attributes (chunk-scan deltas, replica URLs, cache verdicts),
	// children, and a Remote flag on subtrees a shard server reported.
	SpanProfile = obsv.SpanJSON
	// QueryExplain is the dry-run plan of one query: per-predicate and
	// per-chunk zone-map verdicts plus a cold-cache I/O estimate,
	// computed without fetching any chunk.
	QueryExplain = engine.QueryExplain
	// PredExplain is one predicate's compile and zone-map summary.
	PredExplain = engine.PredExplain
	// LedgerSnapshot is a query's resource bill: chunk verdicts, bytes
	// read, RPCs, per-phase times.
	LedgerSnapshot = obsv.LedgerSnapshot
	// AttrProfile compares an attribute's distribution inside a region
	// with the whole table (the "why is this region interesting" view).
	AttrProfile = core.AttrProfile
	// ValueLift is one over/under-represented categorical value.
	ValueLift = core.ValueLift
	// ExampleRow is one sampled tuple from a region.
	ExampleRow = core.ExampleRow
)

// Re-exported configuration constants.
const (
	// CutEquiWidth splits numeric ranges into equal-width intervals.
	CutEquiWidth = core.CutEquiWidth
	// CutMedian splits numeric ranges at quantiles (the paper default).
	CutMedian = core.CutMedian
	// CutVariance minimizes within-interval variance (optimal 1-D
	// k-means).
	CutVariance = core.CutVariance
	// CutSketch approximates median cuts with a one-pass GK sketch.
	CutSketch = core.CutSketch
	// MergeProduct merges cluster maps with the ×-product grid.
	MergeProduct = core.MergeProduct
	// MergeCompose merges by locally re-cutting regions (default).
	MergeCompose = core.MergeCompose
	// DistVI is the raw variation-of-information distance.
	DistVI = core.DistVI
	// DistNVI is VI normalized by joint entropy (default).
	DistNVI = core.DistNVI
	// DistNMI is 1 − normalized mutual information.
	DistNMI = core.DistNMI
)

// DefaultOptions returns the paper's pipeline configuration (8 regions,
// 3 cut attributes, 8 maps, binary median cuts, normalized VI at 0.95,
// composition merging, screening on).
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultAnytimeOptions returns the progressive-exploration defaults.
func DefaultAnytimeOptions() AnytimeOptions { return core.DefaultAnytimeOptions() }

// Explorer is the top-level handle: one table plus a pipeline
// configuration.
type Explorer struct {
	table *Table
	opts  Options
	cart  *core.Cartographer
	// set is non-nil for sharded explorers (NewSharded): column stats
	// reduce from per-shard partials and sessions scan per shard.
	set *shard.Set
}

// New builds an Explorer over a table.
func New(table *Table, opts Options) (*Explorer, error) {
	cart, err := core.NewCartographer(table, opts)
	if err != nil {
		return nil, err
	}
	return &Explorer{table: table, opts: opts, cart: cart}, nil
}

// NewSharded builds an Explorer over an opened sharded table. The
// pipeline runs on the reassembled combined table — scans, partition
// bitmaps and contingency counts fan out chunk-by-chunk across shard
// boundaries — while column statistics (sorted values, sketches,
// category counts) are computed as per-shard partials on the worker
// pool and merged, and sessions keep per-shard predicate bitmaps.
// Results are byte-identical to exploring the equivalent unsharded
// table, at any shard count and parallelism.
func NewSharded(st *ShardedTable, opts Options) (*Explorer, error) {
	cart, err := core.NewCartographerWith(st.set.Table(), opts, st.set.Provider(opts.Parallelism))
	if err != nil {
		return nil, err
	}
	return &Explorer{table: st.set.Table(), opts: opts, cart: cart, set: st.set}, nil
}

// Table returns the explored table.
func (e *Explorer) Table() *Table { return e.table }

// Explore parses a CQL statement ("EXPLORE t WHERE … [WITH …]"),
// validates it against the table, and returns the ranked data maps. WITH
// options override the explorer's defaults for this call only; WITH
// SAMPLE f runs the pipeline on a uniform f-fraction sample. Calls
// without overrides run on the explorer's shared Cartographer, so
// repeated explorations reuse its column-stat cache instead of
// re-sorting the same columns.
func (e *Explorer) Explore(cqlText string) (res *Result, err error) {
	return e.exploreCtx(context.Background(), cqlText)
}

// ExploreProfiled is Explore with tracing: it additionally returns the
// exploration's span tree — per-phase timings (screen, cut, cluster,
// merge, rank), chunk-scan deltas, and on sharded-remote stores the
// shard servers' own spans grafted under the RPCs that triggered them.
func (e *Explorer) ExploreProfiled(cqlText string) (*Result, *SpanProfile, error) {
	tr, root := obsv.NewTrace("explore")
	res, err := e.exploreCtx(obsv.WithSpan(context.Background(), root), cqlText)
	root.End()
	if err != nil {
		return nil, nil, err
	}
	return res, tr.Tree(), nil
}

func (e *Explorer) exploreCtx(ctx context.Context, cqlText string) (res *Result, err error) {
	// Sampling gathers rows through lazy columns before a Cartographer
	// exists; surface chunk-fetch failures there as errors too.
	defer func() {
		if r := recover(); r != nil {
			ce := storage.AsChunkPanic(r)
			if ce == nil {
				panic(r)
			}
			if err == nil {
				res, err = nil, ce
			}
		}
	}()
	q, o, err := cql.ParseAndBind(cqlText, e.table)
	if err != nil {
		return nil, err
	}
	effective, err := cql.ApplyOptions(e.opts, o)
	if err != nil {
		return nil, err
	}
	sampled := o.Sample > 0 && o.Sample < 1
	if !sampled && effective == e.opts {
		return e.cart.ExploreCtx(ctx, q)
	}
	tbl := e.table
	if sampled {
		k := int(o.Sample * float64(tbl.NumRows()))
		if k < 1 {
			k = 1
		}
		tbl = sample.Table(tbl, k, 1)
	}
	var cart *core.Cartographer
	if !sampled && e.set != nil {
		// WITH overrides on a sharded explorer keep the per-shard stat
		// fan-out; sampling materializes a new table, which does not.
		cart, err = core.NewCartographerWith(tbl, effective, e.set.Provider(effective.Parallelism))
	} else {
		cart, err = core.NewCartographer(tbl, effective)
	}
	if err != nil {
		return nil, err
	}
	return cart.ExploreCtx(ctx, q)
}

// ExploreQuery runs the pipeline on an already-built query.
func (e *Explorer) ExploreQuery(q Query) (*Result, error) {
	return e.cart.Explore(q)
}

// ScanStats snapshots the explorer's cumulative chunk-level scan
// decisions: chunks pruned / matched in full / scanned, and — on
// memory-tiered stores — chunks decoded and decoded-cache hits. It is
// the observable measure of how well zone maps are filtering I/O.
func (e *Explorer) ScanStats() ScanSnapshot { return e.cart.ScanStats() }

// ExploreAnytime runs the progressive Section 5.1 loop: results refine
// over growing samples until they stabilize, the data is exhausted, or
// ctx is done.
func (e *Explorer) ExploreAnytime(ctx context.Context, cqlText string, opts AnytimeOptions) (*AnytimeResult, error) {
	q, _, err := cql.ParseAndBind(cqlText, e.table)
	if err != nil {
		return nil, err
	}
	return e.cart.ExploreAnytime(ctx, q, opts)
}

// NewSession starts a stateful drill-down session with result caching
// and anticipative prefetching. On sharded explorers the session's
// predicate-bitmap LRU is keyed per shard and selections assemble
// shard by shard.
func (e *Explorer) NewSession() *Session {
	if e.set != nil {
		return session.NewSharded(e.cart, e.set)
	}
	return session.New(e.cart)
}

// Explain dry-runs a CQL statement: predicates are compiled exactly as
// Explore compiles them, then judged chunk by chunk against zone maps
// alone — per-predicate and combined prune/full/scan verdicts plus a
// cold-cache I/O estimate, without decoding a single chunk.
func (e *Explorer) Explain(cqlText string) (*QueryExplain, error) {
	q, _, err := cql.ParseAndBind(cqlText, e.table)
	if err != nil {
		return nil, err
	}
	return engine.ExplainQuery(e.table, q)
}

// ParseQuery parses and binds a CQL statement without executing it.
func (e *Explorer) ParseQuery(cqlText string) (Query, error) {
	q, _, err := cql.ParseAndBind(cqlText, e.table)
	return q, err
}

// Count evaluates a query and returns how many rows it selects.
func (e *Explorer) Count(q Query) (int, error) { return engine.Count(e.table, q) }

// DescribeRegion explains why a region is interesting by profiling every
// non-pinned attribute inside the region against the whole table
// (Section 5.2's explanation feature). Profiles come back sorted by
// decreasing deviation.
func (e *Explorer) DescribeRegion(q Query) ([]AttrProfile, error) {
	return core.DescribeRegion(e.table, q)
}

// RegionExamples returns up to k random example tuples from a region —
// the Section 5.2 presentation aid. Deterministic in seed.
func (e *Explorer) RegionExamples(q Query, k int, seed int64) ([]ExampleRow, error) {
	return core.RegionExamples(e.table, q, k, seed)
}

// RepresentativeExamples returns up to k tuples chosen near the region's
// numeric medians — "representative" rather than random examples.
func (e *Explorer) RepresentativeExamples(q Query, k int) ([]ExampleRow, error) {
	return core.RepresentativeExamples(e.table, q, k)
}

// LoadCSV reads a table from CSV with type inference (first row must be
// a header).
func LoadCSV(name string, r io.Reader) (*Table, error) {
	return storage.ReadCSV(name, r, nil)
}

// LoadCSVFile reads a table from a CSV file; the table is named after
// the file unless name is non-empty.
func LoadCSVFile(name, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if name == "" {
		name = path
	}
	return storage.ReadCSV(name, f, nil)
}

// WriteCSV writes a table as CSV.
func WriteCSV(t *Table, w io.Writer) error { return storage.WriteCSV(t, w) }

// SaveStore ingests a table into an on-disk columnar store file (the
// ".atl" format: per-column chunked segments with dictionary-encoded
// strings, null bitmaps, per-chunk zone maps and a lazy-open directory
// — see internal/colstore). A store reopens orders of magnitude faster
// than re-parsing CSV and enables zone-map pruned, chunk-parallel
// scans.
func SaveStore(t *Table, path string) error {
	return colstore.WriteFile(path, t, 0)
}

// OpenStore opens a table previously saved with SaveStore. The returned
// table carries the store's chunk metadata: explorations over it prune
// chunks via zone maps and shard scans across Options.Parallelism
// workers, with results byte-identical to a CSV-loaded table.
//
// The residency mode is automatic: small files decode eagerly, files
// past the colstore auto-threshold (64 MiB) open lazily — mmapped, with
// chunks decoding on first touch — so tables larger than RAM serve from
// the same format. Use OpenStoreWith for explicit control (and a Close
// handle).
func OpenStore(path string) (*Table, error) {
	s, err := colstore.Open(path)
	if err != nil {
		return nil, err
	}
	return s.Table(), nil
}

// StoreOpenOptions are the facade's memory-tier knobs for opening
// stores (single-file or sharded).
type StoreOpenOptions struct {
	// Lazy forces on-demand chunk decoding; Eager forces a full decode
	// at open. Neither set = automatic by file size (and the
	// ATLAS_STORE_MODE environment variable).
	Lazy, Eager bool
	// CacheBytes bounds the decoded-chunk cache of lazy opens: > 0 is a
	// byte budget (shared across the files of a sharded set), < 0
	// forces unbounded, 0 consults ATLAS_CHUNK_CACHE_BUDGET then
	// defaults to unbounded.
	CacheBytes int64
	// Defer (sharded opens only) postpones opening shard files until a
	// chunk or statistic of that shard is first touched; the manifest's
	// per-shard statistics stand in for zone maps until then, so
	// selective explorations skip whole shard files.
	Defer bool
	// VerifyCRC forces the whole-file trailer checksum even on lazy
	// opens (v3 lazy opens otherwise rely on per-chunk CRCs).
	VerifyCRC bool
}

func (o StoreOpenOptions) colstoreOptions() colstore.Options {
	co := colstore.Options{CacheBytes: o.CacheBytes, VerifyCRC: o.VerifyCRC}
	switch {
	case o.Lazy:
		co.Mode = colstore.ModeLazy
	case o.Eager:
		co.Mode = colstore.ModeEager
	}
	return co
}

// StoreIOStats is a snapshot of a lazy store's I/O counters.
type StoreIOStats = colstore.IOStats

// ScanSnapshot is a snapshot of an Explorer's cumulative chunk-level
// scan decisions (pruned / full / scanned, decodes, cache hits).
type ScanSnapshot = engine.Snapshot

// StoreHandle is an opened on-disk store — a single ".atl" file or a
// shard manifest, sniffed by content — with lifecycle control the plain
// OpenStore path does not give: Close releases file mappings, IOStats
// reports lazy I/O counters, NewExplorer builds the right Explorer
// kind.
type StoreHandle struct {
	store *colstore.Store
	set   *ShardedTable
}

// OpenStoreWith opens path (an ".atl" store or an ".atlm" manifest)
// with explicit memory-tier options.
func OpenStoreWith(path string, o StoreOpenOptions) (*StoreHandle, error) {
	if shard.IsManifest(path) {
		st, err := OpenShardedWith(path, o)
		if err != nil {
			return nil, err
		}
		return &StoreHandle{set: st}, nil
	}
	s, err := colstore.OpenWith(path, o.colstoreOptions())
	if err != nil {
		return nil, err
	}
	return &StoreHandle{store: s}, nil
}

// Table returns the opened table (combined across shards for sharded
// stores).
func (h *StoreHandle) Table() *Table {
	if h.set != nil {
		return h.set.Table()
	}
	return h.store.Table()
}

// Sharded returns the sharded view of the handle, or nil for a
// single-file store.
func (h *StoreHandle) Sharded() *ShardedTable { return h.set }

// Lazy reports whether the store serves chunks on demand.
func (h *StoreHandle) Lazy() bool {
	if h.set != nil {
		return h.set.Lazy()
	}
	return h.store.Lazy()
}

// Close releases every file mapping and descriptor the handle holds.
func (h *StoreHandle) Close() error {
	if h.set != nil {
		return h.set.Close()
	}
	return h.store.Close()
}

// IOStats snapshots the handle's cumulative lazy-I/O counters (zeros
// for eager stores).
func (h *StoreHandle) IOStats() StoreIOStats {
	if h.set != nil {
		return h.set.IOStats()
	}
	return h.store.IOStats()
}

// NewExplorer builds an Explorer over the handle — sharded fan-out when
// the handle is a shard set, plain otherwise.
func (h *StoreHandle) NewExplorer(opts Options) (*Explorer, error) {
	if h.set != nil {
		return NewSharded(h.set, opts)
	}
	return New(h.store.Table(), opts)
}

// ShardedTable is an opened sharded table: N ".atl" shard files plus
// their manifest (see internal/shard for the manifest format),
// reassembled into one combined chunk-aware table with per-shard views.
type ShardedTable struct {
	set *shard.Set
}

// Table returns the combined table (all shards, in manifest order).
func (s *ShardedTable) Table() *Table { return s.set.Table() }

// NumShards returns the number of shards.
func (s *ShardedTable) NumShards() int { return s.set.NumShards() }

// ShardTable returns shard i's view over the combined table.
func (s *ShardedTable) ShardTable(i int) *Table { return s.set.ShardTable(i) }

// ShardIngestOptions configures SaveSharded.
type ShardIngestOptions struct {
	// Shards is the requested shard count (>= 1).
	Shards int
	// HashKey selects hash partitioning by the named column; empty uses
	// range partitioning in row order (the default — shards concatenate
	// back into the original table bit for bit).
	HashKey string
	// ChunkSize is rows per chunk in every shard file (0 = 65536; must
	// be a positive multiple of 64).
	ChunkSize int
}

// SaveSharded splits a table into shard store files next to
// manifestPath (conventionally "name.atlm") and writes the manifest
// describing them. Open the result with OpenSharded, atlas -store, or
// atlasd -store.
func SaveSharded(t *Table, manifestPath string, o ShardIngestOptions) error {
	_, err := shard.WriteSharded(manifestPath, t, shard.IngestOptions{
		Shards:    o.Shards,
		HashKey:   o.HashKey,
		ChunkSize: o.ChunkSize,
	})
	return err
}

// Lazy reports whether the set assembled as lazy views over its shard
// files rather than a materialized concatenation.
func (s *ShardedTable) Lazy() bool { return s.set.LazyViews() }

// Close closes every opened shard file.
func (s *ShardedTable) Close() error { return s.set.Close() }

// IOStats sums the lazy-I/O counters across the set's shard files.
func (s *ShardedTable) IOStats() StoreIOStats { return s.set.IOStats() }

// OpenedShards counts shard files opened so far — under deferred opens,
// the observable measure of shard-file pruning.
func (s *ShardedTable) OpenedShards() int { return s.set.OpenedShards() }

// OpenSharded opens a shard manifest and every shard file it references,
// validating shard schemas, row counts and chunk sizes against each
// other. Explore the result with NewSharded. Chunk-aligned sets
// assemble as lazy views sharing one decoded-chunk cache — open holds
// no concatenated copy of the columns.
func OpenSharded(manifestPath string) (*ShardedTable, error) {
	return OpenShardedWith(manifestPath, StoreOpenOptions{})
}

// OpenShardedWith is OpenSharded with explicit memory-tier options;
// with Defer set, shard files open only when first touched and the
// manifest's per-shard statistics prune whole files beforehand.
//
// Manifests whose shard locations are http(s):// URLs open through the
// remote shard fabric (see internal/remote): each such shard is served
// by its own atlasd -serve-shard process, statistics fan out as
// per-shard RPCs, and chunk payloads stream on demand into the shared
// decoded-chunk cache. Explorations stay byte-identical to the local
// sharded (and unsharded) table.
func OpenShardedWith(manifestPath string, o StoreOpenOptions) (*ShardedTable, error) {
	set, err := shard.OpenWith(manifestPath, shard.Options{
		Store:  o.colstoreOptions(),
		Defer:  o.Defer,
		Remote: remote.NewOpener(remote.Options{}),
	})
	if err != nil {
		return nil, err
	}
	return &ShardedTable{set: set}, nil
}

// IsShardManifest reports whether path holds a shard manifest (JSON)
// rather than a single ".atl" store, so store-accepting entry points can
// take either.
func IsShardManifest(path string) bool { return shard.IsManifest(path) }

// ColumnSummary holds the descriptive statistics of one column.
type ColumnSummary = storage.ColumnSummary

// Summarize computes descriptive statistics for every column of a table.
func Summarize(t *Table) []ColumnSummary { return storage.Summarize(t) }

// JoinFK materializes the inner FK join of a fact table with a dimension
// table (Section 5.2 multi-table exploration).
func JoinFK(fact *Table, factKey string, dim *Table, dimKey, resultName string) (*Table, error) {
	return engine.JoinFK(fact, factKey, dim, dimKey, resultName)
}

// ---- bundled synthetic datasets (stand-ins for the paper's data; see
// DESIGN.md "Substitutions") ----

// CensusDataset generates the paper's Figure 2 survey data: age, sex,
// education, salary, eye_color with planted dependencies.
func CensusDataset(n int, seed int64) *Table { return datagen.Census(n, seed) }

// BodyMetricsDataset generates the Figures 4–5 data: a dependent
// {age, income, education_years} trio and a clustered {size, weight}
// pair. The second return value is the planted cluster label per row.
func BodyMetricsDataset(n int, seed int64) (*Table, []int) { return datagen.BodyMetrics(n, seed) }

// SkySurveyDataset generates SDSS-like photometry with three object
// classes occupying distinct color loci.
func SkySurveyDataset(n int, seed int64) *Table { return datagen.SkySurvey(n, seed) }

// Figure5Dataset generates the paper's Figure 5 scenario: four planted
// (size, weight) clusters whose weight boundary depends on the size
// region, so only composition-style local cuts recover them. The second
// return value is the planted cluster label (0–3) per row.
func Figure5Dataset(n int, seed int64) (*Table, []int) { return datagen.Figure5(n, seed) }

// OrdersDataset generates a TPC-like fact/dimension pair with a planted
// cross-table dependency (customer segment ↔ order amount).
func OrdersDataset(nOrders, nCustomers int, seed int64) (orders, customers *Table) {
	return datagen.Orders(nOrders, nCustomers, seed)
}

// NewRange returns the closed interval predicate attr ∈ [lo, hi].
func NewRange(attr string, lo, hi float64) Predicate { return query.NewRange(attr, lo, hi) }

// NewIn returns the set predicate attr ∈ values.
func NewIn(attr string, values ...string) Predicate { return query.NewIn(attr, values...) }

// NewBoolEq returns the predicate attr = v.
func NewBoolEq(attr string, v bool) Predicate { return query.NewBoolEq(attr, v) }

// NewQuery builds a conjunctive query over the named table.
func NewQuery(table string, preds ...Predicate) Query { return query.New(table, preds...) }

// FormatResult renders a result for terminals: the input, base counts,
// flagged columns and every ranked map.
func FormatResult(r *Result) string {
	out := fmt.Sprintf("%s\n%d of %d rows selected, %d map(s) in %v\n",
		r.Input.String(), r.BaseCount, r.TotalRows, len(r.Maps), r.Elapsed.Round(1000))
	for _, f := range r.Flagged {
		out += fmt.Sprintf("  [screened out %s: %s]\n", f.Attr, f.Reason)
	}
	for i, m := range r.Maps {
		out += fmt.Sprintf("#%d %s", i+1, m.String())
	}
	return out
}
