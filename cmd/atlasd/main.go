// Command atlasd serves the mapping engine over HTTP/JSON — the back end
// of the paper's Web GUI layer (Figure 6).
//
// Usage:
//
//	atlasd -addr :8080 -dataset census -rows 100000
//	atlasd -addr :8080 -csv data.csv -table mydata
//	atlasd -addr :8080 -store data.atl
//	atlasd -addr :8080 -store data.atlm
//	atlasd -addr :9001 -serve-shard data.00001.atl
//
// -store serves directly from a columnar store file created with
// "atlas ingest" (or atlas.SaveStore): cold start skips CSV parsing
// entirely and scans prune chunks via the store's zone maps. A shard
// manifest (created with "atlas ingest -shards N") serves the sharded
// table: explorations fan out across shards, sessions keep per-shard
// predicate bitmaps, and GET /api/shards reports the layout with merged
// per-shard statistics. Manifests whose shard locations are http(s)://
// URLs open through the remote shard fabric — this atlasd becomes the
// coordinator of a scale-out deployment.
//
// -serve-shard is the other side of that deployment: it serves ONE .atl
// shard file over the fabric's RPC protocol (statistics plane + chunk
// plane, see internal/remote) instead of the exploration API. Run one
// per shard, then point a coordinator manifest (atlas remote-manifest)
// at the listen addresses.
//
// Endpoints:
//
//	GET  /api/schema
//	POST /api/explore                 {"cql": "EXPLORE census WHERE ..."}
//	POST /api/sessions                → {"id": 0}
//	GET  /api/sessions/{id}
//	GET  /api/sessions/{id}/history
//	POST /api/sessions/{id}/explore   {"cql": "..."}
//	POST /api/sessions/{id}/drill     {"map": 0, "region": 1}
//	POST /api/sessions/{id}/back
//	GET  /api/shards
//	GET  /api/stats
//
// With -serve-shard, the /shard/v1/* fabric endpoints are served
// instead (meta, zones, dict, chunk, values, catcounts, boolcounts,
// partials, predcount, health).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro"
	"repro/internal/colstore"
	"repro/internal/remote"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dataset = flag.String("dataset", "census", "bundled dataset: census, body, sky, orders")
		rows    = flag.Int("rows", 100000, "rows to generate for bundled datasets")
		seed    = flag.Int64("seed", 1, "generator seed")
		csvPath = flag.String("csv", "", "serve a CSV file instead of a bundled dataset")
		tblName = flag.String("table", "", "table name for -csv")
		store   = flag.String("store", "", "serve a columnar store file (.atl) created with 'atlas ingest'")
		shardF  = flag.String("serve-shard", "", "serve ONE .atl shard file over the remote shard fabric instead of the exploration API")
		lazy    = flag.Bool("lazy", false, "force lazy (memory-tiered) store opens: chunks decode on first touch")
		eager   = flag.Bool("eager", false, "force eager store opens (full decode up front)")
		cacheB  = flag.Int64("cachebudget", 0, "decoded-chunk cache budget in bytes for lazy opens (0 = env/unbounded)")
		deferS  = flag.Bool("defer", false, "defer opening shard files until first touch (sharded stores)")

		// Remote-fabric failover knobs (coordinator over a manifest with
		// http(s):// shard locations; ignored otherwise).
		fabTimeout  = flag.Duration("fabric-timeout", 0, "per-request timeout against remote shards (0 = 30s default)")
		fabRetries  = flag.Int("fabric-retries", 0, "extra attempts after a transient remote failure, on top of one attempt per replica (0 = default 2, negative = none)")
		breakerTrip = flag.Int("breaker-threshold", 0, "consecutive failures before a replica's circuit breaker trips (0 = default 3, negative = never)")
		breakerCool = flag.Duration("breaker-cooldown", 0, "how long a tripped replica stays out of rotation before a half-open probe (0 = 2s default)")
	)
	flag.Parse()

	if *shardF != "" {
		co := colstore.Options{CacheBytes: *cacheB}
		switch {
		case *lazy:
			co.Mode = colstore.ModeLazy
		case *eager:
			co.Mode = colstore.ModeEager
		}
		st, err := colstore.OpenWith(*shardF, co)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atlasd:", err)
			os.Exit(1)
		}
		rs := remote.NewServer(st)
		t := st.Table()
		log.Printf("atlasd: serving shard %q (table %q, %d rows, %d chunks) on %s",
			*shardF, t.Name(), t.NumRows(), st.NumChunks(), *addr)
		if err := http.ListenAndServe(*addr, rs.Handler()); err != nil {
			log.Fatal(err)
		}
		return
	}

	var srv *server.Server
	if *store != "" {
		sc := server.StoreConfig{Defer: *deferS}
		sc.Remote = remote.NewOpener(remote.Options{
			Timeout:          *fabTimeout,
			Retries:          *fabRetries,
			BreakerThreshold: *breakerTrip,
			BreakerCooldown:  *breakerCool,
		})
		sc.Store.CacheBytes = *cacheB
		switch {
		case *lazy:
			sc.Store.Mode = colstore.ModeLazy
		case *eager:
			sc.Store.Mode = colstore.ModeEager
		}
		s, err := server.NewFromStoreWith(*store, atlas.DefaultOptions(), sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atlasd:", err)
			os.Exit(1)
		}
		srv = s
	} else {
		table, err := loadTable(*dataset, *rows, *seed, *csvPath, *tblName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atlasd:", err)
			os.Exit(1)
		}
		srv = server.New(table, atlas.DefaultOptions())
	}
	table := srv.Table()
	log.Printf("atlasd: serving table %q (%d rows) on %s", table.Name(), table.NumRows(), *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}

func loadTable(dataset string, rows int, seed int64, csvPath, tblName string) (*atlas.Table, error) {
	if csvPath != "" {
		return atlas.LoadCSVFile(tblName, csvPath)
	}
	switch dataset {
	case "census":
		return atlas.CensusDataset(rows, seed), nil
	case "body":
		t, _ := atlas.BodyMetricsDataset(rows, seed)
		return t, nil
	case "sky":
		return atlas.SkySurveyDataset(rows, seed), nil
	case "orders":
		orders, customers := atlas.OrdersDataset(rows, rows/40+1, seed)
		return atlas.JoinFK(orders, "cid", customers, "cid", "orders")
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}
