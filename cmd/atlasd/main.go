// Command atlasd serves the mapping engine over HTTP/JSON — the back end
// of the paper's Web GUI layer (Figure 6).
//
// Usage:
//
//	atlasd -addr :8080 -dataset census -rows 100000
//	atlasd -addr :8080 -csv data.csv -table mydata
//	atlasd -addr :8080 -store data.atl
//	atlasd -addr :8080 -store data.atlm
//	atlasd -addr :9001 -serve-shard data.00001.atl
//
// -store serves directly from a columnar store file created with
// "atlas ingest" (or atlas.SaveStore): cold start skips CSV parsing
// entirely and scans prune chunks via the store's zone maps. A shard
// manifest (created with "atlas ingest -shards N") serves the sharded
// table: explorations fan out across shards, sessions keep per-shard
// predicate bitmaps, and GET /api/shards reports the layout with merged
// per-shard statistics. Manifests whose shard locations are http(s)://
// URLs open through the remote shard fabric — this atlasd becomes the
// coordinator of a scale-out deployment.
//
// -serve-shard is the other side of that deployment: it serves ONE .atl
// shard file over the fabric's RPC protocol (statistics plane + chunk
// plane, see internal/remote) instead of the exploration API. Run one
// per shard, then point a coordinator manifest (atlas remote-manifest)
// at the listen addresses.
//
// Endpoints:
//
//	GET  /api/schema
//	POST /api/explore                 {"cql": "EXPLORE census WHERE ..."}
//	POST /api/sessions                → {"id": 0}
//	GET  /api/sessions/{id}
//	GET  /api/sessions/{id}/history
//	POST /api/sessions/{id}/explore   {"cql": "..."}
//	POST /api/sessions/{id}/drill     {"map": 0, "region": 1}
//	POST /api/sessions/{id}/back
//	GET  /api/shards
//	POST /api/explain                 {"cql": "..."} — dry-run plan, no chunk I/O
//	GET  /api/querylog                ?slow=1 ?errors=1 ?op=drill ?since=42 ?n=50
//	GET  /api/workload                captured workload export (JSONL)
//	GET  /api/stats
//	GET  /metrics
//
// Every query answer carries its resource ledger; ?profile=1 adds the
// span tree and ?profile=perfetto the same trace as Chrome trace-event
// JSON. -pprof additionally mounts /debug/pprof/.
//
// With -serve-shard, the /shard/v1/* fabric endpoints are served
// instead (meta, zones, dict, chunk, values, catcounts, boolcounts,
// partials, predcount, health).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/colstore"
	"repro/internal/obsv"
	"repro/internal/remote"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dataset = flag.String("dataset", "census", "bundled dataset: census, body, sky, orders")
		rows    = flag.Int("rows", 100000, "rows to generate for bundled datasets")
		seed    = flag.Int64("seed", 1, "generator seed")
		csvPath = flag.String("csv", "", "serve a CSV file instead of a bundled dataset")
		tblName = flag.String("table", "", "table name for -csv")
		store   = flag.String("store", "", "serve a columnar store file (.atl) created with 'atlas ingest'")
		shardF  = flag.String("serve-shard", "", "serve ONE .atl shard file over the remote shard fabric instead of the exploration API")
		lazy    = flag.Bool("lazy", false, "force lazy (memory-tiered) store opens: chunks decode on first touch")
		eager   = flag.Bool("eager", false, "force eager store opens (full decode up front)")
		cacheB  = flag.Int64("cachebudget", 0, "decoded-chunk cache budget in bytes for lazy opens (0 = env/unbounded)")
		deferS  = flag.Bool("defer", false, "defer opening shard files until first touch (sharded stores)")
		slowQ   = flag.Duration("slow-query", 0, "log explorations (or, with -serve-shard, fabric requests) that take at least this long (0 = disabled)")
		pprofF  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (coordinator and -serve-shard)")
		recordW = flag.String("record-workload", "", "append the query workload (JSONL, replayable with 'atlasbench -replay') to this file as queries finish")

		// Overload-safety knobs (see README "Production hardening").
		queryTimeout = flag.Duration("query-timeout", 0, "per-query wall-clock deadline; requests may shorten it via X-Atlas-Query-Timeout (0 = none)")
		maxConc      = flag.Int("max-concurrent", 0, "queries executing at once before new ones queue (0 = unlimited)")
		queueDepth   = flag.Int("queue-depth", 64, "queries allowed to wait for a slot; excess is shed with 429")
		queueTimeout = flag.Duration("queue-timeout", time.Second, "max wait in the admission queue before shedding with 429 (0 = wait until the client gives up)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "on SIGTERM/SIGINT: budget for in-flight queries to finish before connections close")

		// Remote-fabric failover knobs (coordinator over a manifest with
		// http(s):// shard locations; ignored otherwise).
		fabTimeout  = flag.Duration("fabric-timeout", 0, "per-request timeout against remote shards (0 = 30s default)")
		fabRetries  = flag.Int("fabric-retries", 0, "extra attempts after a transient remote failure, on top of one attempt per replica (0 = default 2, negative = none)")
		breakerTrip = flag.Int("breaker-threshold", 0, "consecutive failures before a replica's circuit breaker trips (0 = default 3, negative = never)")
		breakerCool = flag.Duration("breaker-cooldown", 0, "how long a tripped replica stays out of rotation before a half-open probe (0 = 2s default)")
	)
	flag.Parse()

	if *shardF != "" {
		co := colstore.Options{CacheBytes: *cacheB}
		switch {
		case *lazy:
			co.Mode = colstore.ModeLazy
		case *eager:
			co.Mode = colstore.ModeEager
		}
		st, err := colstore.OpenWith(*shardF, co)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atlasd:", err)
			os.Exit(1)
		}
		rs := remote.NewServer(st)
		if *slowQ > 0 {
			rs.SlowThreshold = *slowQ
			rs.SlowLog = log.Printf
		}
		mux := http.NewServeMux()
		mux.Handle("/", rs.Handler())
		mux.Handle("GET /metrics", shardRegistry(rs, st).Handler())
		if *pprofF {
			mountPprof(mux)
		}
		t := st.Table()
		log.Printf("atlasd: serving shard %q (table %q, %d rows, %d chunks) on %s",
			*shardF, t.Name(), t.NumRows(), st.NumChunks(), *addr)
		// On SIGTERM the shard fails health checks (coordinators rotate to
		// replicas) and finishes in-flight fabric requests within the
		// drain budget.
		if err := serveWithDrain(*addr, mux, *drainTimeout, func() { rs.SetDraining(true) }); err != nil {
			log.Fatal(err)
		}
		return
	}

	var srv *server.Server
	if *store != "" {
		sc := server.StoreConfig{Defer: *deferS}
		sc.Remote = remote.NewOpener(remote.Options{
			Timeout:          *fabTimeout,
			Retries:          *fabRetries,
			BreakerThreshold: *breakerTrip,
			BreakerCooldown:  *breakerCool,
		})
		sc.Store.CacheBytes = *cacheB
		switch {
		case *lazy:
			sc.Store.Mode = colstore.ModeLazy
		case *eager:
			sc.Store.Mode = colstore.ModeEager
		}
		s, err := server.NewFromStoreWith(*store, atlas.DefaultOptions(), sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atlasd:", err)
			os.Exit(1)
		}
		srv = s
	} else {
		table, err := loadTable(*dataset, *rows, *seed, *csvPath, *tblName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atlasd:", err)
			os.Exit(1)
		}
		srv = server.New(table, atlas.DefaultOptions())
	}
	if *slowQ > 0 {
		srv.SetSlowQueryLog(*slowQ, nil)
	}
	if *recordW != "" {
		f, err := os.OpenFile(*recordW, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atlasd: -record-workload:", err)
			os.Exit(1)
		}
		defer f.Close()
		srv.RecordWorkloadTo(f)
		log.Printf("atlasd: recording workload to %s", *recordW)
	}
	srv.SetAdmission(server.AdmissionConfig{
		MaxConcurrent: *maxConc,
		QueueDepth:    *queueDepth,
		QueueTimeout:  *queueTimeout,
		QueryTimeout:  *queryTimeout,
	})
	table := srv.Table()
	handler := srv.Handler()
	if *pprofF {
		// The API handler owns "/" via its middleware; route /debug/pprof/
		// ahead of it on an outer mux.
		outer := http.NewServeMux()
		mountPprof(outer)
		outer.Handle("/", handler)
		handler = outer
	}
	log.Printf("atlasd: serving table %q (%d rows) on %s", table.Name(), table.NumRows(), *addr)
	// On SIGTERM/SIGINT: /healthz starts failing and new queries are
	// refused with 503, in-flight ones finish (or hit their -query-timeout
	// deadline) within the drain budget, then the process exits 0.
	if err := serveWithDrain(*addr, handler, *drainTimeout, func() { srv.SetDraining(true) }); err != nil {
		log.Fatal(err)
	}
}

// serveWithDrain runs an HTTP server until SIGTERM/SIGINT, then drains:
// onDrain flips the role's drain switch (health fails, admissions are
// refused), in-flight requests get drainTimeout to finish, and past the
// budget every live request context is cancelled — queries unwind at
// the next chunk boundary — before connections close. A clean drain
// returns nil and the process exits 0.
func serveWithDrain(addr string, handler http.Handler, drainTimeout time.Duration, onDrain func()) error {
	// Requests derive from baseCtx so the drain deadline can cancel
	// whatever refuses to finish on its own.
	baseCtx, cancelInflight := context.WithCancel(context.Background())
	defer cancelInflight()
	srv := &http.Server{
		Addr:        addr,
		Handler:     handler,
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
	}
	stop() // a second signal falls back to the default hard kill
	log.Printf("atlasd: signal received, draining (budget %s)", drainTimeout)
	onDrain()
	// Grace window before the listener closes: health checks answer 503
	// and the gate refuses new queries while load balancers rotate away.
	// It comes out of the drain budget and is capped so tiny budgets
	// still leave time for the in-flight work.
	grace := drainTimeout / 4
	if grace > 500*time.Millisecond {
		grace = 500 * time.Millisecond
	}
	time.Sleep(grace)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout-grace)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		// Budget spent: cancel the stragglers' contexts so they unwind
		// with a ledgered cancellation, then close their connections.
		log.Printf("atlasd: drain budget exceeded, cancelling in-flight requests: %v", err)
		cancelInflight()
		_ = srv.Close()
	}
	log.Printf("atlasd: drained, exiting")
	return nil
}

// mountPprof wires the net/http/pprof handlers under /debug/pprof/ —
// the -pprof flag, for live CPU/heap/goroutine profiling of a
// coordinator or shard server.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// shardRegistry builds the metric registry a -serve-shard process
// scrapes at GET /metrics: the fabric server's request counters plus the
// underlying store's I/O counters, all sampled on scrape.
func shardRegistry(rs *remote.Server, st *colstore.Store) *obsv.Registry {
	r := obsv.NewRegistry()
	fab := map[string]string{"layer": "fabric"}
	r.CounterFunc("atlas_shard_requests_total", "fabric requests served (including errors)", fab, func() float64 {
		return float64(rs.Stats().Requests)
	})
	r.CounterFunc("atlas_shard_bytes_out_total", "response body bytes of successful answers", fab, func() float64 {
		return float64(rs.Stats().BytesOut)
	})
	r.CounterFunc("atlas_shard_stat_computes_total", "per-attribute statistics computed (stat-cache misses)", fab, func() float64 {
		return float64(rs.Stats().StatComputes)
	})
	sto := map[string]string{"layer": "store"}
	r.CounterFunc("atlas_store_bytes_read_total", "bytes read from segment files", sto, func() float64 {
		return float64(st.IOStats().BytesRead)
	})
	r.CounterFunc("atlas_store_chunks_decoded_total", "chunk payloads decoded from storage", sto, func() float64 {
		return float64(st.IOStats().ChunksDecoded)
	})
	r.CounterFunc("atlas_store_cache_hits_total", "decoded-chunk cache hits", sto, func() float64 {
		return float64(st.IOStats().CacheHits)
	})
	r.GaugeFunc("atlas_store_cache_bytes", "decoded-chunk cache residency", sto, func() float64 {
		return float64(st.IOStats().CacheBytes)
	})
	obsv.RegisterBuildInfo(r, colstore.Version)
	obsv.RegisterGoRuntime(r)
	return r
}

func loadTable(dataset string, rows int, seed int64, csvPath, tblName string) (*atlas.Table, error) {
	if csvPath != "" {
		return atlas.LoadCSVFile(tblName, csvPath)
	}
	switch dataset {
	case "census":
		return atlas.CensusDataset(rows, seed), nil
	case "body":
		t, _ := atlas.BodyMetricsDataset(rows, seed)
		return t, nil
	case "sky":
		return atlas.SkySurveyDataset(rows, seed), nil
	case "orders":
		orders, customers := atlas.OrdersDataset(rows, rows/40+1, seed)
		return atlas.JoinFK(orders, "cid", customers, "cid", "orders")
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}
