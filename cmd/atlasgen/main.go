// Command atlasgen writes the bundled synthetic datasets to CSV files so
// they can be inspected, versioned, or loaded into other systems.
//
// Usage:
//
//	atlasgen -dataset census -rows 50000 -o census.csv
//	atlasgen -dataset orders -rows 100000 -o orders.csv -o2 customers.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		dataset = flag.String("dataset", "census", "dataset: census, body, sky, fig5, orders")
		rows    = flag.Int("rows", 50000, "rows to generate")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output CSV path (required)")
		out2    = flag.String("o2", "", "second output path (customers table for -dataset orders)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "atlasgen: -o is required")
		os.Exit(2)
	}

	write := func(t *atlas.Table, path string) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := atlas.WriteCSV(t, f); err != nil {
			return err
		}
		fmt.Printf("atlasgen: wrote %s (%d rows, %d cols)\n", path, t.NumRows(), t.NumCols())
		return nil
	}

	var err error
	switch *dataset {
	case "census":
		err = write(atlas.CensusDataset(*rows, *seed), *out)
	case "body":
		t, _ := atlas.BodyMetricsDataset(*rows, *seed)
		err = write(t, *out)
	case "sky":
		err = write(atlas.SkySurveyDataset(*rows, *seed), *out)
	case "fig5":
		t, _ := atlas.Figure5Dataset(*rows, *seed)
		err = write(t, *out)
	case "orders":
		if *out2 == "" {
			fmt.Fprintln(os.Stderr, "atlasgen: -dataset orders needs -o2 for the customers table")
			os.Exit(2)
		}
		orders, customers := atlas.OrdersDataset(*rows, *rows/40+1, *seed)
		if err = write(orders, *out); err == nil {
			err = write(customers, *out2)
		}
	default:
		fmt.Fprintf(os.Stderr, "atlasgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "atlasgen:", err)
		os.Exit(1)
	}
}
