// Command atlas is the interactive explorer: a terminal front-end to the
// mapping engine (the paper's GUI layer, adapted to a REPL).
//
// Usage:
//
//	atlas -dataset census            # explore a bundled synthetic dataset
//	atlas -csv data.csv -table name  # explore a CSV file
//	atlas -store data.atl            # explore a columnar store file
//	atlas -store data.atlm           # explore a sharded store (manifest)
//	atlas ingest -csv data.csv -out data.atl [-table name] [-chunk 65536]
//	atlas ingest -csv data.csv -shards 4 [-by keycol] [-out data.atlm]
//	atlas remote-manifest -manifest data.atlm -out remote.atlm \
//	    -urls http://host1:9001,http://host2:9001
//	atlas workload -in workload.jsonl [-v]
//
// The ingest subcommand converts a CSV file into the on-disk columnar
// store format (".atl"): per-column chunked segments with zone maps,
// which reopen without re-parsing and let scans skip chunks that cannot
// match a predicate. With -shards N it splits the table into N shard
// files plus a JSON manifest (range partitioning by row order, or hash
// partitioning by the -by column), which explorations fan out across.
// -store explores either kind of file directly — manifests are detected
// by content, not extension.
//
// The remote-manifest subcommand rewrites a local manifest's shard
// locations into the URLs of atlasd -serve-shard processes, producing
// the coordinator manifest of a scale-out deployment; -store (here and
// in atlasd) opens such manifests through the remote shard fabric.
//
// REPL commands:
//
//	explore <CQL>      run an exploration, e.g. explore EXPLORE census
//	explain <CQL>      dry-run a query against zone maps (no chunk I/O)
//	maps               re-print the current ranked maps
//	pick <map> <reg>   drill down into a region (1-based indexes)
//	back               return to the parent exploration
//	history            show the drill-down tree walked so far
//	schema             print the table schema
//	help               this text
//	quit               exit
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/colstore"
	"repro/internal/obsv"
	"repro/internal/shard"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "ingest" {
		if err := runIngest(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "atlas ingest:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "remote-manifest" {
		if err := runRemoteManifest(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "atlas remote-manifest:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "workload" {
		if err := runWorkload(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "atlas workload:", err)
			os.Exit(1)
		}
		return
	}
	var (
		dataset = flag.String("dataset", "census", "bundled dataset: census, body, sky, orders")
		rows    = flag.Int("rows", 50000, "rows to generate for bundled datasets")
		seed    = flag.Int64("seed", 1, "generator seed")
		csvPath = flag.String("csv", "", "explore a CSV file instead of a bundled dataset")
		tblName = flag.String("table", "", "table name for -csv (defaults to the file path)")
		store   = flag.String("store", "", "explore a columnar store file (.atl) created with 'atlas ingest'")
		lazy    = flag.Bool("lazy", false, "force lazy (memory-tiered) store opens: chunks decode on first touch")
		eager   = flag.Bool("eager", false, "force eager store opens (full decode up front)")
		cacheB  = flag.Int64("cachebudget", 0, "decoded-chunk cache budget in bytes for lazy opens (0 = env/unbounded)")
		deferS  = flag.Bool("defer", false, "defer opening shard files until first touch (sharded stores)")
		verbose = flag.Bool("v", false, "print scan statistics (chunks pruned/scanned/decoded) after each exploration")
		profile = flag.Bool("profile", false, "trace every exploration and print its span tree as JSON (phase timings, chunk-scan deltas, remote shard spans)")
	)
	flag.Parse()

	ex, handle, err := makeExplorer(*dataset, *rows, *seed, *csvPath, *tblName, *store, atlas.StoreOpenOptions{
		Lazy: *lazy, Eager: *eager, CacheBytes: *cacheB, Defer: *deferS,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "atlas:", err)
		os.Exit(1)
	}
	if handle != nil {
		defer handle.Close()
	}
	table := ex.Table()
	sess := ex.NewSession()

	// With -profile, explorations and drill-downs run under a trace and
	// the resulting span tree is printed after the maps.
	traced := func(name string, run func(ctx context.Context) (*atlas.Node, error)) (*atlas.Node, error) {
		if !*profile {
			return run(context.Background())
		}
		tr, root := obsv.NewTrace(name)
		node, err := run(obsv.WithSpan(context.Background(), root))
		root.End()
		if err != nil {
			return nil, err
		}
		printNode(node)
		printProfile(tr.Tree())
		return node, nil
	}
	printStats := func() {
		if !*verbose {
			return
		}
		sn := ex.ScanStats()
		fmt.Printf("[scan] pruned=%d full=%d scanned=%d", sn.ChunksPruned, sn.ChunksFull, sn.ChunksScanned)
		if handle != nil && handle.Lazy() {
			io := handle.IOStats()
			fmt.Printf(" decoded=%d cache-hits=%d bytes-read=%d cache-bytes=%d",
				io.ChunksDecoded, io.CacheHits, io.BytesRead, io.CacheBytes)
			if st := handle.Sharded(); st != nil {
				fmt.Printf(" shards-open=%d/%d", st.OpenedShards(), st.NumShards())
			}
		}
		fmt.Println()
	}

	fmt.Printf("Atlas explorer — table %q (%d rows, %d columns). Type 'help' for commands.\n",
		table.Name(), table.NumRows(), table.NumCols())
	fmt.Printf("Try: explore EXPLORE %s\n", table.Name())

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("atlas> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		switch strings.ToLower(cmd) {
		case "quit", "exit":
			return
		case "help":
			printHelp()
		case "schema":
			for _, sum := range atlas.Summarize(table) {
				fmt.Println(" ", sum.String())
			}
		case "explain":
			plan, err := ex.Explain(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printExplain(plan)
		case "explore":
			q, err := ex.ParseQuery(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			node, err := traced("explore", func(ctx context.Context) (*atlas.Node, error) {
				return sess.ExploreCtx(ctx, q)
			})
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if !*profile {
				printNode(node)
			}
			printStats()
			sess.Prefetch(4)
		case "maps":
			node, err := sess.Current()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printNode(node)
		case "pick":
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				fmt.Println("usage: pick <map> <region> (1-based)")
				continue
			}
			mi, err1 := strconv.Atoi(parts[0])
			ri, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				fmt.Println("usage: pick <map> <region> (1-based)")
				continue
			}
			node, err := traced("drill", func(ctx context.Context) (*atlas.Node, error) {
				return sess.DrillDownCtx(ctx, mi-1, ri-1)
			})
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if !*profile {
				printNode(node)
			}
			printStats()
			sess.Prefetch(4)
		case "why":
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				fmt.Println("usage: why <map> <region> (1-based)")
				continue
			}
			mi, err1 := strconv.Atoi(parts[0])
			ri, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				fmt.Println("usage: why <map> <region> (1-based)")
				continue
			}
			node, err := sess.Current()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if mi < 1 || mi > len(node.Result.Maps) {
				fmt.Println("error: map index out of range")
				continue
			}
			m := node.Result.Maps[mi-1]
			if ri < 1 || ri > len(m.Regions) {
				fmt.Println("error: region index out of range")
				continue
			}
			profiles, err := ex.DescribeRegion(m.Regions[ri-1].Query)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("what makes %s special:\n", m.Regions[ri-1].Query.String())
			for i, p := range profiles {
				if i >= 5 {
					break
				}
				fmt.Println("  -", p.String())
			}
		case "peek":
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				fmt.Println("usage: peek <map> <region> (1-based)")
				continue
			}
			mi, err1 := strconv.Atoi(parts[0])
			ri, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				fmt.Println("usage: peek <map> <region> (1-based)")
				continue
			}
			node, err := sess.Current()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if mi < 1 || mi > len(node.Result.Maps) {
				fmt.Println("error: map index out of range")
				continue
			}
			m := node.Result.Maps[mi-1]
			if ri < 1 || ri > len(m.Regions) {
				fmt.Println("error: region index out of range")
				continue
			}
			examples, err := ex.RepresentativeExamples(m.Regions[ri-1].Query, 5)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			header := make([]string, table.NumCols())
			for i := 0; i < table.NumCols(); i++ {
				header[i] = table.Schema().Field(i).Name
			}
			fmt.Println("representative tuples:", strings.Join(header, " | "))
			for _, e := range examples {
				fmt.Println("  ", strings.Join(e.Values, " | "))
			}
		case "interests":
			w := sess.Interest()
			if len(w) == 0 {
				fmt.Println("no drill-downs yet — no learned interests")
				continue
			}
			for attr, weight := range w {
				fmt.Printf("  %-20s %.2f\n", attr, weight)
			}
		case "back":
			node, err := sess.Back()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printNode(node)
		case "history":
			for _, n := range sess.History() {
				indent := ""
				if n.Parent >= 0 {
					indent = "  "
				}
				fmt.Printf("%s[%d] %s (%d rows)\n", indent, n.ID, n.Query.String(), n.Result.BaseCount)
			}
		default:
			fmt.Printf("unknown command %q; type 'help'\n", cmd)
		}
	}
}

// runIngest implements the "atlas ingest" subcommand: CSV in, columnar
// store file (or sharded store: manifest plus shard files) out.
func runIngest(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	var (
		csvPath = fs.String("csv", "", "CSV file to ingest (required)")
		outPath = fs.String("out", "", "output store path (default: CSV path with .atl extension, .atlm when sharded)")
		tblName = fs.String("table", "", "table name stored in the file (default: CSV path)")
		chunk   = fs.Int("chunk", 0, "rows per chunk; positive multiple of 64 (default 65536)")
		shards  = fs.Int("shards", 1, "split the table across this many shard files plus a manifest")
		hashBy  = fs.String("by", "", "hash-partition shards by this key column (default: range partitioning by row order)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvPath == "" {
		return fmt.Errorf("-csv is required")
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1")
	}
	if *hashBy != "" && *shards == 1 {
		return fmt.Errorf("-by needs -shards > 1")
	}
	sharded := *shards > 1
	dst := *outPath
	if dst == "" {
		ext := ".atl"
		if sharded {
			ext = ".atlm"
		}
		dst = strings.TrimSuffix(*csvPath, filepath.Ext(*csvPath)) + ext
	}
	start := time.Now()
	table, err := atlas.LoadCSVFile(*tblName, *csvPath)
	if err != nil {
		return err
	}
	parsed := time.Now()
	if sharded {
		err = atlas.SaveSharded(table, dst, atlas.ShardIngestOptions{
			Shards:    *shards,
			HashKey:   *hashBy,
			ChunkSize: *chunk,
		})
	} else {
		err = colstore.WriteFile(dst, table, *chunk)
	}
	if err != nil {
		return err
	}
	info, err := os.Stat(dst)
	if err != nil {
		return err
	}
	size := *chunk
	if size == 0 {
		size = colstore.DefaultChunkSize
	}
	chunks := (table.NumRows() + size - 1) / size
	if sharded {
		mode := "range"
		if *hashBy != "" {
			mode = "hash(" + *hashBy + ")"
		}
		fmt.Fprintf(out, "ingested %q: %d rows, %d columns, %d chunk(s), %d %s shard(s) -> %s\n",
			table.Name(), table.NumRows(), table.NumCols(), chunks, *shards, mode, dst)
	} else {
		fmt.Fprintf(out, "ingested %q: %d rows, %d columns, %d chunk(s) -> %s (%d bytes)\n",
			table.Name(), table.NumRows(), table.NumCols(), chunks, dst, info.Size())
	}
	fmt.Fprintf(out, "parse %v, write %v\n",
		parsed.Sub(start).Round(time.Millisecond), time.Since(parsed).Round(time.Millisecond))
	return nil
}

// runRemoteManifest implements "atlas remote-manifest": local manifest
// in, coordinator manifest with http(s):// shard locations out.
func runRemoteManifest(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("remote-manifest", flag.ContinueOnError)
	var (
		manifest = fs.String("manifest", "", "local shard manifest to rewrite (required)")
		outPath  = fs.String("out", "", "output manifest path (required)")
		urls     = fs.String("urls", "", "comma-separated shard server URLs, one per shard in manifest order; empty entries keep the shard local; separate an entry's replicas with | (primary first), e.g. http://a:8093|http://b:8093 (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *manifest == "" || *outPath == "" || *urls == "" {
		return fmt.Errorf("-manifest, -out and -urls are required")
	}
	m, err := shard.ReadManifest(*manifest)
	if err != nil {
		return err
	}
	list := strings.Split(*urls, ",")
	for i := range list {
		list[i] = strings.TrimSpace(list[i])
	}
	rm, err := shard.RemoteManifest(m, list)
	if err != nil {
		return err
	}
	if err := shard.WriteManifestFile(*outPath, rm); err != nil {
		return err
	}
	nRemote, nReplicas := 0, 0
	for _, sf := range rm.Shards {
		if shard.IsRemoteLocation(sf.File) {
			nRemote++
		}
		nReplicas += len(sf.Replicas)
	}
	fmt.Fprintf(out, "wrote %s: %d shard(s), %d remote, %d replica(s)\n", *outPath, len(rm.Shards), nRemote, nReplicas)
	fmt.Fprintf(out, "serve each shard with: atlasd -addr :PORT -serve-shard SHARD.atl (replicas: same file, another host/port)\n")
	fmt.Fprintf(out, "then explore with:     atlas -store %s  (or atlasd -store %s)\n", *outPath, *outPath)
	return nil
}

// makeExplorer builds the Explorer for the selected source; -store paths
// may name a single .atl file or a shard manifest, opened with the
// given memory-tier options (the returned handle is non-nil for stores
// and owns the file mappings).
func makeExplorer(dataset string, rows int, seed int64, csvPath, tblName, store string, so atlas.StoreOpenOptions) (*atlas.Explorer, *atlas.StoreHandle, error) {
	if store != "" {
		handle, err := atlas.OpenStoreWith(store, so)
		if err != nil {
			return nil, nil, err
		}
		ex, err := handle.NewExplorer(atlas.DefaultOptions())
		if err != nil {
			handle.Close()
			return nil, nil, err
		}
		return ex, handle, nil
	}
	table, err := loadTable(dataset, rows, seed, csvPath, tblName)
	if err != nil {
		return nil, nil, err
	}
	ex, err := atlas.New(table, atlas.DefaultOptions())
	return ex, nil, err
}

func loadTable(dataset string, rows int, seed int64, csvPath, tblName string) (*atlas.Table, error) {
	if csvPath != "" {
		return atlas.LoadCSVFile(tblName, csvPath)
	}
	switch dataset {
	case "census":
		return atlas.CensusDataset(rows, seed), nil
	case "body":
		t, _ := atlas.BodyMetricsDataset(rows, seed)
		return t, nil
	case "sky":
		return atlas.SkySurveyDataset(rows, seed), nil
	case "orders":
		orders, customers := atlas.OrdersDataset(rows, rows/40+1, seed)
		return atlas.JoinFK(orders, "cid", customers, "cid", "orders")
	default:
		return nil, fmt.Errorf("unknown dataset %q (want census, body, sky or orders)", dataset)
	}
}

// printExplain renders a dry-run plan: per-predicate zone-map verdicts,
// the combined chunk outcome, and the cold-cache I/O estimate — all
// computed without decoding a single chunk.
func printExplain(p *atlas.QueryExplain) {
	fmt.Printf("EXPLAIN %s: %d rows", p.Table, p.Rows)
	if p.Unchunked {
		fmt.Println(" (unchunked: whole-column scan, no zone verdicts)")
		for _, pe := range p.Preds {
			fmt.Printf("  %s\n", pe.Pred)
		}
		return
	}
	fmt.Printf(", %d chunk(s) of %d rows\n", p.NumChunks, p.ChunkSize)
	for _, pe := range p.Preds {
		if pe.Never {
			fmt.Printf("  %-40s never matches (empty dictionary intersection)\n", pe.Pred)
			continue
		}
		fmt.Printf("  %-40s prune=%d full=%d scan=%d\n", pe.Pred, pe.Prune, pe.Full, pe.Scan)
	}
	fmt.Printf("chunks: %d pruned, %d full, %d scanned\n", p.ChunksPruned, p.ChunksFull, p.ChunksScanned)
	fmt.Printf("cold-cache estimate: %d chunk fetch(es), ~%d KiB decoded\n",
		p.EstChunkFetches, (p.EstBytesDecoded+1023)/1024)
}

// printProfile renders a profiled exploration's span tree as indented
// JSON, ready to pipe into jq or a flamegraph converter.
func printProfile(tree *atlas.SpanProfile) {
	b, err := json.MarshalIndent(tree, "", "  ")
	if err != nil {
		fmt.Println("profile error:", err)
		return
	}
	fmt.Printf("[profile]\n%s\n", b)
}

func printNode(n *atlas.Node) {
	fmt.Print(atlas.FormatResult(n.Result))
	fmt.Println("pick a region with: pick <map#> <region#>  (e.g. pick 1 1)")
}

func printHelp() {
	fmt.Println(`commands:
  explore <CQL>      run an exploration, e.g. explore EXPLORE census WHERE age BETWEEN 20 AND 60
  explain <CQL>      dry-run a query: zone-map verdicts per predicate and chunk, estimated I/O, no chunk reads
  maps               re-print the current ranked maps
  pick <map> <reg>   drill down into a region (1-based)
  why <map> <reg>    explain what makes a region special vs the whole table
  peek <map> <reg>   show representative example tuples from a region
  interests          show the attribute interests learned from your drill-downs
  back               return to the parent exploration
  history            show the exploration tree
  schema             print the table schema
  quit               exit`)
}
