package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestLoadTableBundledDatasets(t *testing.T) {
	cases := []struct {
		dataset string
		rows    int
	}{
		{"census", 100},
		{"body", 100},
		{"sky", 100},
		{"orders", 100},
	}
	for _, c := range cases {
		tbl, err := loadTable(c.dataset, c.rows, 1, "", "")
		if err != nil {
			t.Errorf("%s: %v", c.dataset, err)
			continue
		}
		if tbl.NumRows() == 0 {
			t.Errorf("%s: empty table", c.dataset)
		}
	}
	if _, err := loadTable("nope", 10, 1, "", ""); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestLoadTableCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(path, []byte("x,y\n1,a\n2,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tbl, err := loadTable("", 0, 0, path, "mytable")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name() != "mytable" || tbl.NumRows() != 2 {
		t.Fatalf("table = %s rows %d", tbl.Name(), tbl.NumRows())
	}
	if _, err := loadTable("", 0, 0, filepath.Join(dir, "missing.csv"), ""); err == nil {
		t.Error("missing file should fail")
	}
}

func TestIngestAndLoadStore(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(csvPath, []byte("x,y\n1,a\n2,b\n,c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := runIngest([]string{"-csv", csvPath, "-table", "mytable", "-chunk", "64"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	storePath := filepath.Join(dir, "data.atl")
	if _, err := os.Stat(storePath); err != nil {
		t.Fatalf("default output path not written: %v", err)
	}
	if !strings.Contains(out.String(), "3 rows") {
		t.Errorf("ingest summary = %q", out.String())
	}
	handle, err := atlas.OpenStoreWith(storePath, atlas.StoreOpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Close()
	tbl := handle.Table()
	if tbl.Name() != "mytable" || tbl.NumRows() != 3 {
		t.Fatalf("store table = %s rows %d", tbl.Name(), tbl.NumRows())
	}
	if !tbl.Column(0).IsNull(2) {
		t.Error("NULL cell lost through ingest round trip")
	}
	// Required flag and bad chunk sizes error out.
	if err := runIngest(nil, &out); err == nil {
		t.Error("missing -csv must fail")
	}
	if err := runIngest([]string{"-csv", csvPath, "-chunk", "100"}, &out); err == nil {
		t.Error("chunk size not a multiple of 64 must fail")
	}
}
