package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadTableBundledDatasets(t *testing.T) {
	cases := []struct {
		dataset string
		rows    int
	}{
		{"census", 100},
		{"body", 100},
		{"sky", 100},
		{"orders", 100},
	}
	for _, c := range cases {
		tbl, err := loadTable(c.dataset, c.rows, 1, "", "")
		if err != nil {
			t.Errorf("%s: %v", c.dataset, err)
			continue
		}
		if tbl.NumRows() == 0 {
			t.Errorf("%s: empty table", c.dataset)
		}
	}
	if _, err := loadTable("nope", 10, 1, "", ""); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestLoadTableCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(path, []byte("x,y\n1,a\n2,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tbl, err := loadTable("", 0, 0, path, "mytable")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name() != "mytable" || tbl.NumRows() != 2 {
		t.Fatalf("table = %s rows %d", tbl.Name(), tbl.NumRows())
	}
	if _, err := loadTable("", 0, 0, filepath.Join(dir, "missing.csv"), ""); err == nil {
		t.Error("missing file should fail")
	}
}
