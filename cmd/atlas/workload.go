package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/workload"
)

// runWorkload implements the "atlas workload" subcommand: parse a
// recorded workload file (atlasd -record-workload / GET /api/workload)
// and summarize it — ops by kind and outcome, sessions, duration
// quantiles, scanned-chunk totals — without replaying anything. -v
// additionally lists every entry.
func runWorkload(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("workload", flag.ContinueOnError)
	in := fs.String("in", "", "workload file to summarize (JSONL)")
	verbose := fs.Bool("v", false, "list every entry after the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in <workload.jsonl>")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := workload.Parse(f)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "workload %s: format v%d, table %q, recorded %s\n",
		*in, w.Header.Version, w.Header.Table, w.Header.Start.Format(time.RFC3339))
	fmt.Fprintf(out, "%d entries, %d sessions\n", len(w.Entries), len(w.Sessions()))

	type bucket struct {
		n    int
		durs []time.Duration
	}
	byOp := map[string]*bucket{}
	byOutcome := map[string]int{}
	replayable := 0
	var chunksScanned, bytesRead int64
	for i := range w.Entries {
		e := &w.Entries[i]
		b := byOp[e.Op]
		if b == nil {
			b = &bucket{}
			byOp[e.Op] = b
		}
		b.n++
		b.durs = append(b.durs, time.Duration(e.DurNs))
		outcome := e.Outcome
		if outcome == "" {
			outcome = "ok"
		}
		byOutcome[outcome]++
		if e.Replayable() {
			replayable++
		}
		if e.Ledger != nil {
			chunksScanned += e.Ledger.ChunksScanned
			bytesRead += e.Ledger.BytesRead
		}
	}
	ops := make([]string, 0, len(byOp))
	for op := range byOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		b := byOp[op]
		sort.Slice(b.durs, func(i, j int) bool { return b.durs[i] < b.durs[j] })
		p50 := b.durs[len(b.durs)/2]
		p99 := b.durs[(len(b.durs)-1)*99/100]
		fmt.Fprintf(out, "  %-16s %6d ops   p50 %-10v p99 %v\n", op, b.n, p50.Round(time.Microsecond), p99.Round(time.Microsecond))
	}
	outcomes := make([]string, 0, len(byOutcome))
	for o := range byOutcome {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	fmt.Fprintf(out, "outcomes:")
	for _, o := range outcomes {
		fmt.Fprintf(out, " %s=%d", o, byOutcome[o])
	}
	fmt.Fprintf(out, " (%d replayable)\n", replayable)
	if chunksScanned > 0 || bytesRead > 0 {
		fmt.Fprintf(out, "resource bill: %d chunks scanned, %d bytes read\n", chunksScanned, bytesRead)
	}
	if *verbose {
		for i := range w.Entries {
			e := &w.Entries[i]
			sess := "-"
			if e.Session != workload.StatelessSession {
				sess = fmt.Sprintf("s%d", e.Session)
			}
			fmt.Fprintf(out, "%5d +%-12v %-16s %-4s %-10s %q\n", e.Seq,
				time.Duration(e.OffsetNs).Round(time.Millisecond), e.Op, sess,
				orDefault(e.Outcome, "ok"), e.Input)
		}
	}
	return nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
