package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/server"
	"repro/internal/workload"
)

// This file is atlasbench's workload harness: -replay drives a recorded
// workload file (atlasd -record-workload, or GET /api/workload) against
// a live server and scores it against SLO thresholds, and -workloadjson
// runs the synthetic 32-session zipf scenario end to end and writes
// BENCH_10.json. Both modes replay twice — a sequential reference pass
// and the concurrent scored pass — and hard-fail unless every response
// is byte-identical across the two: concurrency must never change an
// answer, only its timing.

// replayConfig carries the -replay / -workloadjson flag values.
type replayConfig struct {
	Target    string
	Pacing    string
	Speed     float64
	SLOStrict bool
	SLO       workload.SLO
}

// defaultSLO is the declared service objective both modes score
// against. The latency bounds are generous on purpose — they catch
// collapse (queueing runaway, lock convoys), not noise — while the
// error and shed bounds are exact: a deterministic workload on an
// ungated server must shed and fail nothing.
func defaultSLO() workload.SLO {
	return workload.SLO{
		P50:           2 * time.Second,
		P99:           10 * time.Second,
		MaxErrRate:    0,
		MaxErrRateSet: true,
	}
}

// runReplay is the -replay mode: parse the file, replay it sequentially
// for the reference answers, replay it again with the recorded
// concurrency shape, and require byte-identity before scoring.
func runReplay(path string, cfg replayConfig) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	w, err := workload.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	target := cfg.Target
	if target == "" {
		// No live server given: serve the bundled census table in
		// process, the atlasd default shape.
		tbl := datagen.Census(100_000, 1)
		ts := httptest.NewServer(server.New(tbl, atlas.DefaultOptions()).Handler())
		defer ts.Close()
		target = ts.URL
		fmt.Printf("replay: no -target, serving census (100000 rows) in process\n")
	}
	fmt.Printf("replay: %s — %d entries, %d sessions, table %q\n",
		path, len(w.Entries), len(w.Sessions()), w.Header.Table)
	score, err := replayScored(w, target, cfg)
	if err != nil {
		return err
	}
	printScore(score)
	if !score.Pass {
		if cfg.SLOStrict {
			return fmt.Errorf("SLO violated: %v", score.Violations)
		}
		fmt.Printf("warning: SLO violated (rerun with -slo-strict to fail): %v\n", score.Violations)
		return nil
	}
	fmt.Printf("replay: SLO: pass (p50<=%v p99<=%v err-rate<=%g)\n", cfg.SLO.P50, cfg.SLO.P99, cfg.SLO.MaxErrRate)
	return nil
}

// replayScored runs the reference pass and the scored pass against
// target, hard-fails on any byte drift between them, and returns the
// scored pass's SLO scorecard.
func replayScored(w *workload.Workload, target string, cfg replayConfig) (*workload.Score, error) {
	ctx := context.Background()
	ref, err := workload.Replay(ctx, w, workload.ReplayOptions{Target: target, Sequential: true})
	if err != nil {
		return nil, fmt.Errorf("reference pass: %w", err)
	}
	pacing := workload.ClosedLoop
	if cfg.Pacing == string(workload.OpenLoop) {
		pacing = workload.OpenLoop
	}
	got, err := workload.Replay(ctx, w, workload.ReplayOptions{Target: target, Pacing: pacing, Speed: cfg.Speed})
	if err != nil {
		return nil, fmt.Errorf("replay pass: %w", err)
	}
	if err := workload.VerifyIdentical(w, ref, got); err != nil {
		return nil, fmt.Errorf("replay drifted from the sequential reference: %w", err)
	}
	fmt.Printf("replay: %s pass byte-identical to the sequential reference\n", pacing)
	return workload.ScoreReplay(got, cfg.SLO, runtime.NumCPU()), nil
}

func printScore(sc *workload.Score) {
	fmt.Printf("replay: %d requests in %v — p50 %v, p99 %v, %.1f qps (%.2f qps/core), %d errors, %d shed, %d 4xx\n",
		sc.Requests, sc.Wall.Round(time.Millisecond), sc.P50.Round(time.Millisecond),
		sc.P99.Round(time.Millisecond), sc.QPS, sc.QPSPerCore, sc.Errors, sc.Shed, sc.Client4xx)
}

// scoreMetrics flattens a scorecard into a benchRecord metrics map.
func scoreMetrics(sc *workload.Score) map[string]float64 {
	pass := 0.0
	if sc.Pass {
		pass = 1
	}
	return map[string]float64{
		"requests":     float64(sc.Requests),
		"completed":    float64(sc.Completed),
		"errors":       float64(sc.Errors),
		"shed":         float64(sc.Shed),
		"client_4xx":   float64(sc.Client4xx),
		"p50_ms":       float64(sc.P50.Nanoseconds()) / 1e6,
		"p99_ms":       float64(sc.P99.Nanoseconds()) / 1e6,
		"wall_ms":      float64(sc.Wall.Nanoseconds()) / 1e6,
		"qps":          sc.QPS,
		"qps_per_core": sc.QPSPerCore,
		"err_rate":     sc.ErrRate,
		"shed_rate":    sc.ShedRate,
		"slo_pass":     pass,
		"cores":        float64(runtime.NumCPU()),
	}
}

// writeWorkloadJSON is the -workloadjson mode: a 32-session zipf mix of
// census explores and drill-downs, generated deterministically, replayed
// closed-loop and open-loop against an in-process server. Each pass must
// be byte-identical to its sequential reference; SLO violations warn at
// -quick scale and fail the run at full scale.
func writeWorkloadJSON(path string, quick bool) error {
	n := 300_000
	opsPerSession := 16
	if quick {
		n = 60_000
		opsPerSession = 6
	}
	const sessions = 32
	tbl := datagen.Census(n, 1)
	opts := core.DefaultOptions()
	opts.Parallelism = 2
	srv := server.New(tbl, opts)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := workload.GenSpec{
		Table:    "census",
		Sessions: sessions,
		Explores: []string{
			"EXPLORE census",
			"EXPLORE census WHERE age BETWEEN 25 AND 60",
			"EXPLORE census WHERE salary = '>50K'",
			"EXPLORE census WHERE age BETWEEN 20 AND 40 AND education = 'BSc'",
			"EXPLORE census WHERE education = 'MSc'",
			"EXPLORE census WHERE eye_color = 'Blue' AND age > 50",
		},
		OpsPerSession: opsPerSession,
		ThinkTime:     25 * time.Millisecond,
		Seed:          7,
	}
	w := workload.Generate(spec)
	fmt.Printf("workload: generated %d ops over %d sessions (zipf mix, seed %d)\n",
		len(w.Entries), sessions, spec.Seed)

	slo := defaultSLO()
	results := map[string]benchRecord{}
	for _, pass := range []struct {
		pacing workload.Pacing
		speed  float64
	}{
		{workload.ClosedLoop, 1},
		// Open loop replays the recorded arrival schedule: 4× speed keeps
		// the think-time tail short while still overlapping sessions.
		{workload.OpenLoop, 4},
	} {
		sc, err := replayScored(w, ts.URL, replayConfig{Pacing: string(pass.pacing), Speed: pass.speed, SLO: slo})
		if err != nil {
			return err
		}
		printScore(sc)
		if !sc.Pass {
			if quick {
				fmt.Printf("warning: SLO violated at quick scale (noise-prone): %v\n", sc.Violations)
			} else {
				return fmt.Errorf("%s-loop pass violated the SLO: %v", pass.pacing, sc.Violations)
			}
		}
		name := fmt.Sprintf("WorkloadReplay/census_n=%d/sessions=%d/ops=%d/%s", n, sessions, len(w.Entries), pass.pacing)
		m := scoreMetrics(sc)
		m["byte_identical"] = 1
		m["speed"] = pass.speed
		results[name] = benchRecord{
			NsPerOp:    float64(sc.P99.Nanoseconds()),
			Iterations: int(sc.Requests),
			Metrics:    m,
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote workload results to %s\n", path)
	return nil
}
