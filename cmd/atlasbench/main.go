// Command atlasbench regenerates the paper's figures and claims as
// printed experiments (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	atlasbench -list
//	atlasbench -exp E1,E4
//	atlasbench -all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		ids   = flag.String("exp", "", "comma-separated experiment ids to run (e.g. E1,E4)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced input sizes")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-5s %-55s %s\n", "id", "title", "paper artifact")
		for _, e := range exp.All() {
			fmt.Printf("%-5s %-55s %s\n", e.ID, e.Title, e.Artifact)
		}
		return
	}

	var todo []exp.Experiment
	switch {
	case *all:
		todo = exp.All()
	case *ids != "":
		for _, id := range strings.Split(*ids, ",") {
			id = strings.TrimSpace(id)
			e, ok := exp.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "atlasbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	failed := 0
	for _, e := range todo {
		fmt.Printf("\n######## %s — %s (%s) ########\n", e.ID, e.Title, e.Artifact)
		start := time.Now()
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "atlasbench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Printf("(%s completed in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
