// Command atlasbench regenerates the paper's figures and claims as
// printed experiments (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results), and can emit machine-readable
// micro-benchmark results for tracking the performance trajectory
// across PRs.
//
// Usage:
//
//	atlasbench -list
//	atlasbench -exp E1,E4
//	atlasbench -all [-quick]
//	atlasbench -benchjson BENCH_1.json [-quick]
//	atlasbench -overloadjson BENCH_9.json [-quick]
//	atlasbench -workloadjson BENCH_10.json [-quick]
//	atlasbench -replay workload.jsonl -target http://localhost:8080 [-pacing open] [-slo-strict]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/obsv"
	"repro/internal/query"
	"repro/internal/remote"
	"repro/internal/remote/chaos"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/storage"
)

func main() {
	var (
		list         = flag.Bool("list", false, "list available experiments")
		ids          = flag.String("exp", "", "comma-separated experiment ids to run (e.g. E1,E4)")
		all          = flag.Bool("all", false, "run every experiment")
		quick        = flag.Bool("quick", false, "reduced input sizes")
		benchJSON    = flag.String("benchjson", "", "write pipeline micro-benchmark results to this JSON file (name → ns/op, allocs/op)")
		overloadJSON = flag.String("overloadjson", "", "run the admission-control overload scenario and write its results to this JSON file")

		// Workload replay (see README "Workload capture & replay").
		workloadJSON = flag.String("workloadjson", "", "run the synthetic 32-session zipf workload scenario and write its results to this JSON file")
		replayF      = flag.String("replay", "", "replay a recorded workload file (atlasd -record-workload / GET /api/workload), verify byte-identity against a sequential reference pass, and score it")
		target       = flag.String("target", "", "base URL of the running atlasd -replay drives (default: an in-process census server)")
		pacing       = flag.String("pacing", "closed", "-replay pacing: closed (back-to-back per session) or open (recorded arrival schedule)")
		speed        = flag.Float64("speed", 1, "-replay open-loop speedup over the recorded schedule")
		sloStrict    = flag.Bool("slo-strict", false, "-replay: exit non-zero on SLO violations instead of warning")
	)
	flag.Parse()

	if *replayF != "" {
		cfg := replayConfig{Target: *target, Pacing: *pacing, Speed: *speed, SLOStrict: *sloStrict, SLO: defaultSLO()}
		if err := runReplay(*replayF, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "atlasbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *workloadJSON != "" {
		if err := writeWorkloadJSON(*workloadJSON, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "atlasbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Printf("%-5s %-55s %s\n", "id", "title", "paper artifact")
		for _, e := range exp.All() {
			fmt.Printf("%-5s %-55s %s\n", e.ID, e.Title, e.Artifact)
		}
		return
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "atlasbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *overloadJSON != "" {
		if err := writeOverloadJSON(*overloadJSON, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "atlasbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var todo []exp.Experiment
	switch {
	case *all:
		todo = exp.All()
	case *ids != "":
		for _, id := range strings.Split(*ids, ",") {
			id = strings.TrimSpace(id)
			e, ok := exp.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "atlasbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	failed := 0
	for _, e := range todo {
		fmt.Printf("\n######## %s — %s (%s) ########\n", e.ID, e.Title, e.Artifact)
		start := time.Now()
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "atlasbench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Printf("(%s completed in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// startShardServers serves every shard file of a local manifest from
// its own in-process fabric server and writes the rewritten coordinator
// manifest to outPath — the remote-deployment shape with the network
// taken out of the measurement.
func startShardServers(manifestPath, outPath string) (string, func(), error) {
	m, err := shard.ReadManifest(manifestPath)
	if err != nil {
		return "", nil, err
	}
	dir := filepath.Dir(manifestPath)
	var closers []func()
	stop := func() {
		for _, c := range closers {
			c()
		}
	}
	urls := make([]string, len(m.Shards))
	for i, sf := range m.Shards {
		st, err := colstore.OpenWith(filepath.Join(dir, sf.File), colstore.Options{Mode: colstore.ModeLazy})
		if err != nil {
			stop()
			return "", nil, err
		}
		ts := httptest.NewServer(remote.NewServer(st).Handler())
		closers = append(closers, func() { ts.Close(); st.Close() })
		urls[i] = ts.URL
	}
	rm, err := shard.RemoteManifest(m, urls)
	if err != nil {
		stop()
		return "", nil, err
	}
	if err := shard.WriteManifestFile(outPath, rm); err != nil {
		stop()
		return "", nil, err
	}
	return outPath, stop, nil
}

// startReplicatedShardServers is startShardServers with `replicas`
// chaos-wrapped servers per shard — the failover scenario's fabric.
// The injectors come back as [shard][replica] so a scenario can script
// faults mid-run.
func startReplicatedShardServers(manifestPath, outPath string, replicas int) (string, [][]*chaos.Injector, func(), error) {
	m, err := shard.ReadManifest(manifestPath)
	if err != nil {
		return "", nil, nil, err
	}
	dir := filepath.Dir(manifestPath)
	var closers []func()
	stop := func() {
		for _, c := range closers {
			c()
		}
	}
	entries := make([]string, len(m.Shards))
	var injectors [][]*chaos.Injector
	for i, sf := range m.Shards {
		var urls []string
		var injs []*chaos.Injector
		for r := 0; r < replicas; r++ {
			st, err := colstore.OpenWith(filepath.Join(dir, sf.File), colstore.Options{Mode: colstore.ModeLazy})
			if err != nil {
				stop()
				return "", nil, nil, err
			}
			in := chaos.Wrap(remote.NewServer(st).Handler())
			ts := httptest.NewServer(in)
			closers = append(closers, func() { ts.Close(); st.Close() })
			urls = append(urls, ts.URL)
			injs = append(injs, in)
		}
		entries[i] = strings.Join(urls, "|")
		injectors = append(injectors, injs)
	}
	rm, err := shard.RemoteManifest(m, entries)
	if err != nil {
		stop()
		return "", nil, nil, err
	}
	if err := shard.WriteManifestFile(outPath, rm); err != nil {
		stop()
		return "", nil, nil, err
	}
	return outPath, injectors, stop, nil
}

// renderForCompare flattens a Result into a deterministic string
// (everything except timing) — the failover scenario's byte-identity
// yardstick.
func renderForCompare(r *core.Result) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s | base=%d/%d\n", r.Input.String(), r.BaseCount, r.TotalRows)
	for _, f := range r.Flagged {
		fmt.Fprintf(&b, "flag %s %s\n", f.Attr, f.Reason)
	}
	for _, m := range r.Maps {
		b.WriteString(m.String())
	}
	return b.String()
}

// benchRecord is one benchmark's machine-readable result. Metrics
// carries scenario-specific counters (bytes read, chunks decoded,
// retained heap) alongside the timing.
type benchRecord struct {
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Iterations  int                `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// retainedHeap runs fn, then reports the live-heap growth it retained
// (post-GC), plus whatever fn returns to keep alive.
func retainedHeap(fn func() any) (any, float64) {
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	v := fn()
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	d := float64(m1.HeapAlloc) - float64(m0.HeapAlloc)
	if d < 0 {
		d = 0
	}
	return v, d
}

// writeBenchJSON runs the pipeline micro-benchmarks via testing.Benchmark
// and writes {name: {ns_per_op, allocs_per_op, bytes_per_op}} to path, so
// the perf trajectory can be tracked mechanically across PRs.
func writeBenchJSON(path string, quick bool) error {
	n := 1_000_000
	if quick {
		n = 100_000
	}
	tbl := datagen.Census(n, 1)
	q := query.New("census")

	exploreBench := func(parallelism int) func(b *testing.B) {
		return func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Parallelism = parallelism
			cart, err := core.NewCartographer(tbl, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cart.Explore(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	results := map[string]benchRecord{}
	run := func(name string, fn func(b *testing.B)) {
		fmt.Printf("benchmarking %s ...\n", name)
		r := testing.Benchmark(fn)
		results[name] = benchRecord{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}
	addMetrics := func(name string, metrics map[string]float64) {
		rec := results[name]
		if rec.Metrics == nil {
			rec.Metrics = map[string]float64{}
		}
		for k, v := range metrics {
			rec.Metrics[k] = v
		}
		results[name] = rec
	}
	run(fmt.Sprintf("Explore/census_n=%d/parallel", n), exploreBench(0))
	run(fmt.Sprintf("Explore/census_n=%d/serial", n), exploreBench(1))

	// Cold start: opening the columnar store vs re-parsing CSV, on the
	// same scenarios as the repo-root micro-benchmarks.
	tmp, err := os.MkdirTemp("", "atlasbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	storePath, csvData, err := exp.ColdStartInputs(n, 1, tmp)
	if err != nil {
		return err
	}
	run(fmt.Sprintf("StoreOpen/census_n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := colstore.Open(storePath)
			if err != nil {
				b.Fatal(err)
			}
			if s.Table().NumRows() != n {
				b.Fatal("short read")
			}
		}
	})
	run(fmt.Sprintf("CSVParse/census_n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t, err := storage.ReadCSV("census", bytes.NewReader(csvData), nil)
			if err != nil {
				b.Fatal(err)
			}
			if t.NumRows() != n {
				b.Fatal("short read")
			}
		}
	})

	// Lazy cold open: header + directory only, no chunk decodes. The
	// retained-heap metrics make the memory-tier contrast visible next
	// to the eager open.
	run(fmt.Sprintf("ColdOpenLazy/census_n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := colstore.OpenWith(storePath, colstore.Options{Mode: colstore.ModeLazy})
			if err != nil {
				b.Fatal(err)
			}
			if s.Table().NumRows() != n {
				b.Fatal("short open")
			}
			s.Close()
		}
	})
	{
		sAny, lazyRetained := retainedHeap(func() any {
			s, err := colstore.OpenWith(storePath, colstore.Options{Mode: colstore.ModeLazy})
			if err != nil {
				return err
			}
			return s
		})
		lazyIO := map[string]float64{"retained_bytes": lazyRetained}
		if s, ok := sAny.(*colstore.Store); ok {
			io := s.IOStats()
			lazyIO["chunks_decoded_at_open"] = float64(io.ChunksDecoded)
			lazyIO["bytes_read_at_open"] = float64(io.BytesRead)
			s.Close()
		}
		addMetrics(fmt.Sprintf("ColdOpenLazy/census_n=%d", n), lazyIO)
		eAny, eagerRetained := retainedHeap(func() any {
			s, err := colstore.OpenWith(storePath, colstore.Options{Mode: colstore.ModeEager})
			if err != nil {
				return err
			}
			return s
		})
		_ = eAny
		addMetrics(fmt.Sprintf("StoreOpen/census_n=%d", n), map[string]float64{"retained_bytes": eagerRetained})
	}

	// Sharded Explore: the same census table as a sharded store at
	// several shard counts. Cold explorations (fresh stat cache per
	// iteration) exercise the per-shard partial-statistics fan-out;
	// shards=1 runs the identical code path on a single file, so the
	// single-file baseline and the sharded scenario are directly
	// comparable. Scaling with shard count needs multiple cores.
	shardCounts := []int{1, 2, 4}
	if quick {
		shardCounts = []int{1, 2}
	}
	for _, shards := range shardCounts {
		manifest, err := exp.ShardedInputs(tbl, shards, tmp)
		if err != nil {
			return err
		}
		set, err := shard.Open(manifest)
		if err != nil {
			return err
		}
		run(fmt.Sprintf("ShardedOpen/census_n=%d/shards=%d", n, shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := shard.Open(manifest)
				if err != nil {
					b.Fatal(err)
				}
				if s.Table().NumRows() != n {
					b.Fatal("short open")
				}
			}
		})
		run(fmt.Sprintf("ShardedExploreCold/census_n=%d/shards=%d", n, shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cart, err := core.NewCartographerWith(set.Table(), core.DefaultOptions(), set.Provider(0))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cart.Explore(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Sharded open memory contrast: the lazy-view assembly holds no
	// concatenated copy (the old 2× transient is gone); with lazy shard
	// files even the column decode is deferred.
	{
		shards := shardCounts[len(shardCounts)-1]
		manifest, err := exp.ShardedInputs(tbl, shards, tmp)
		if err != nil {
			return err
		}
		for _, mode := range []struct {
			name string
			o    shard.Options
		}{
			{"eagerfiles", shard.Options{Store: colstore.Options{Mode: colstore.ModeEager}}},
			{"lazyfiles", shard.Options{Store: colstore.Options{Mode: colstore.ModeLazy}}},
		} {
			sAny, retained := retainedHeap(func() any {
				s, err := shard.OpenWith(manifest, mode.o)
				if err != nil {
					return err
				}
				return s
			})
			name := fmt.Sprintf("ShardedOpen/census_n=%d/shards=%d/%s", n, shards, mode.name)
			run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s, err := shard.OpenWith(manifest, mode.o)
					if err != nil {
						b.Fatal(err)
					}
					if s.Table().NumRows() != n {
						b.Fatal("short open")
					}
					s.Close()
				}
			})
			addMetrics(name, map[string]float64{"retained_bytes": retained})
			if s, ok := sAny.(*shard.Set); ok {
				s.Close()
			}
		}
	}

	// Selective exploration over a deferred sharded store: manifest
	// statistics skip whole shard files, zone maps skip chunks inside
	// the touched one, and the chunk counters record how much of the
	// data was ever decoded.
	{
		manifest, sq, totalChunks, err := exp.LazySelectiveInputs(n, 4, tmp)
		if err != nil {
			return err
		}
		set, err := shard.OpenWith(manifest, shard.Options{
			Store: colstore.Options{Mode: colstore.ModeLazy},
			Defer: true,
		})
		if err != nil {
			return err
		}
		name := fmt.Sprintf("LazyExploreSelective/events_n=%d/shards=4/deferred", n)
		run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cart, err := core.NewCartographer(set.Table(), core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cart.Explore(sq); err != nil {
					b.Fatal(err)
				}
			}
		})
		io := set.IOStats()
		addMetrics(name, map[string]float64{
			"chunks_decoded": float64(io.ChunksDecoded),
			"total_chunks":   float64(totalChunks),
			"bytes_read":     float64(io.BytesRead),
			"opened_shards":  float64(set.OpenedShards()),
			"shards":         4,
		})
		set.Close()
	}

	// Remote shard fabric: the same sharded census store with every
	// shard served by its own in-process fabric server (httptest), so
	// the scenario measures the RPC fan-out and wire transfer without
	// network noise. RemoteExploreCold is the full exploration (stats
	// plane fan-out + chunk plane for partitioning); the metrics record
	// one cold exploration's RPC count and bytes over the wire.
	{
		shards := shardCounts[len(shardCounts)-1]
		manifest, err := exp.ShardedInputs(tbl, shards, tmp)
		if err != nil {
			return err
		}
		remoteManifest, stop, err := startShardServers(manifest, filepath.Join(tmp, "remote_census.atlm"))
		if err != nil {
			return err
		}
		opener := remote.NewOpener(remote.Options{})
		set, err := shard.OpenWith(remoteManifest, shard.Options{Remote: opener})
		if err != nil {
			stop()
			return err
		}
		name := fmt.Sprintf("RemoteExploreCold/census_n=%d/shards=%d", n, shards)
		run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cart, err := core.NewCartographerWith(set.Table(), core.DefaultOptions(), set.Provider(0))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cart.Explore(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		set.Close()
		// One fresh cold exploration on its own opener, so the counters
		// mean "RPCs and bytes of one exploration", not b.N of them.
		coldOpener := remote.NewOpener(remote.Options{})
		coldSet, err := shard.OpenWith(remoteManifest, shard.Options{Remote: coldOpener})
		if err != nil {
			stop()
			return err
		}
		cart, err := core.NewCartographerWith(coldSet.Table(), core.DefaultOptions(), coldSet.Provider(0))
		if err != nil {
			stop()
			return err
		}
		if _, err := cart.Explore(q); err != nil {
			stop()
			return err
		}
		st := coldOpener.Stats()
		addMetrics(name, map[string]float64{
			"rpc_count":      float64(st.RPCs),
			"bytes_wire":     float64(st.BytesIn),
			"chunks_fetched": float64(st.ChunkFetches),
			"retries":        float64(st.Retries),
			"shards":         float64(shards),
		})
		coldSet.Close()
		stop()
	}

	// Tracing overhead and phase breakdown: the same remote cold
	// exploration untraced vs under a full span trace, interleaved
	// min-of-N one-shot runs so scheduler drift cancels out. The traced
	// run pays for span allocation, wire headers, and the shard servers'
	// response buffering; the budget is 3% over the untraced run — the
	// observability layer must not tax the query path it measures. One
	// traced run's tree also yields the per-phase wall-clock (base /
	// screen / cut / cluster / merge / rank, plus total RPC time)
	// recorded in the metrics.
	{
		shards := shardCounts[len(shardCounts)-1]
		manifest, err := exp.ShardedInputs(tbl, shards, tmp)
		if err != nil {
			return err
		}
		remoteManifest, stop, err := startShardServers(manifest, filepath.Join(tmp, "traced_census.atlm"))
		if err != nil {
			return err
		}
		// Every run opens its own fabric client, so the stats plane and
		// the chunk plane actually cross the wire each time — a warm set
		// would serve both from client caches and measure nothing.
		coldExplore := func(ctx context.Context) error {
			set, err := shard.OpenWith(remoteManifest, shard.Options{Remote: remote.NewOpener(remote.Options{})})
			if err != nil {
				return err
			}
			defer set.Close()
			cart, err := core.NewCartographerWith(set.Table(), core.DefaultOptions(), set.Provider(0))
			if err != nil {
				return err
			}
			_, err = cart.ExploreCtx(ctx, q)
			return err
		}
		// One untimed warmup pair settles page cache and connection pools.
		if err := coldExplore(context.Background()); err != nil {
			stop()
			return err
		}
		{
			tr, root := obsv.NewTrace("explore")
			err := coldExplore(obsv.WithSpan(context.Background(), root))
			root.End()
			_ = tr
			if err != nil {
				stop()
				return err
			}
		}
		const rounds = 7
		minUntraced, minTraced := time.Duration(0), time.Duration(0)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			if err := coldExplore(context.Background()); err != nil {
				stop()
				return err
			}
			if d := time.Since(start); minUntraced == 0 || d < minUntraced {
				minUntraced = d
			}
			tr, root := obsv.NewTrace("explore")
			start = time.Now()
			err := coldExplore(obsv.WithSpan(context.Background(), root))
			root.End()
			_ = tr
			if err != nil {
				stop()
				return err
			}
			if d := time.Since(start); minTraced == 0 || d < minTraced {
				minTraced = d
			}
		}
		overheadPct := (float64(minTraced)/float64(minUntraced) - 1) * 100
		if overheadPct < 0 {
			overheadPct = 0
		}

		// One more traced run for the breakdown tree.
		tr, root := obsv.NewTrace("explore")
		if err := coldExplore(obsv.WithSpan(context.Background(), root)); err != nil {
			stop()
			return err
		}
		root.End()
		tree := tr.Tree()
		phaseNs := map[string]float64{}
		spans := 0
		var walk func(sp *obsv.SpanJSON)
		walk = func(sp *obsv.SpanJSON) {
			spans++
			switch {
			case sp.Name == "base", sp.Name == "screen", sp.Name == "cut",
				sp.Name == "cluster", sp.Name == "merge", sp.Name == "rank":
				phaseNs[sp.Name] += float64(sp.DurNs)
			case strings.HasPrefix(sp.Name, "rpc "):
				phaseNs["rpc"] += float64(sp.DurNs)
			}
			for _, c := range sp.Children {
				walk(c)
			}
		}
		walk(tree)
		if phaseNs["rpc"] == 0 {
			stop()
			return fmt.Errorf("traced remote exploration recorded no rpc spans")
		}
		metrics := map[string]float64{
			"untraced_ms":  float64(minUntraced.Nanoseconds()) / 1e6,
			"traced_ms":    float64(minTraced.Nanoseconds()) / 1e6,
			"overhead_pct": overheadPct,
			"trace_spans":  float64(spans),
			"shards":       float64(shards),
		}
		for name, ns := range phaseNs {
			metrics[name+"_ms"] = ns / 1e6
		}
		name := fmt.Sprintf("RemoteExploreCold/census_n=%d/shards=%d/traced", n, shards)
		results[name] = benchRecord{
			NsPerOp:    float64(minTraced.Nanoseconds()),
			Iterations: rounds,
			Metrics:    metrics,
		}
		fmt.Printf("benchmarking %s ... untraced=%v traced=%v overhead=%.2f%% spans=%d\n",
			name, minUntraced.Round(time.Millisecond), minTraced.Round(time.Millisecond), overheadPct, spans)
		stop()
		// The 3%% budget is asserted at full scale only: quick runs are a
		// ~20ms exploration where scheduler noise alone is percent-sized.
		if overheadPct > 3.0 {
			if quick {
				fmt.Printf("warning: tracing overhead %.2f%% above the 3%% budget at quick scale (noise-prone)\n", overheadPct)
			} else {
				return fmt.Errorf("tracing overhead %.2f%% on RemoteExploreCold exceeds the 3%% budget (untraced %v, traced %v)",
					overheadPct, minUntraced, minTraced)
			}
		}
	}

	// Failover: the census store over a 4-shard × 2-replica fabric. One
	// cold exploration runs healthy; a second one has one of the four
	// primaries killed two requests into its stream and must complete
	// against the surviving replica — byte-identically, and without
	// blowing up the wall-clock. One-shot timed runs rather than
	// testing.Benchmark iterations, because the kill is a one-time event.
	{
		shards := shardCounts[len(shardCounts)-1]
		manifest, err := exp.ShardedInputs(tbl, shards, tmp)
		if err != nil {
			return err
		}
		remoteManifest, injectors, stop, err := startReplicatedShardServers(manifest, filepath.Join(tmp, "failover_census.atlm"), 2)
		if err != nil {
			return err
		}
		timed := func(kill bool) (time.Duration, string, remote.Stats, error) {
			for _, shardInjs := range injectors {
				for _, in := range shardInjs {
					in.Heal()
				}
			}
			opener := remote.NewOpener(remote.Options{RetryWait: time.Millisecond})
			set, err := shard.OpenWith(remoteManifest, shard.Options{Remote: opener})
			if err != nil {
				return 0, "", remote.Stats{}, err
			}
			defer set.Close()
			cart, err := core.NewCartographerWith(set.Table(), core.DefaultOptions(), set.Provider(0))
			if err != nil {
				return 0, "", remote.Stats{}, err
			}
			if kill {
				// Arm after the open: the metadata is served, the process
				// dies two requests into the exploration itself.
				injectors[0][0].KillAfter(2)
			}
			start := time.Now()
			res, err := cart.Explore(q)
			if err != nil {
				return 0, "", remote.Stats{}, err
			}
			return time.Since(start), renderForCompare(res), opener.Stats(), nil
		}
		healthyDur, healthyRes, healthySt, err := timed(false)
		if err != nil {
			stop()
			return err
		}
		failDur, failRes, failSt, err := timed(true)
		if err != nil {
			stop()
			return fmt.Errorf("failover exploration: %w", err)
		}
		stop()
		if failRes != healthyRes {
			return fmt.Errorf("failover exploration result differs from the healthy run")
		}
		name := fmt.Sprintf("RemoteExploreFailover/census_n=%d/shards=%d/replicas=2", n, shards)
		results[name] = benchRecord{
			NsPerOp:    float64(failDur.Nanoseconds()),
			Iterations: 1,
			Metrics: map[string]float64{
				"healthy_ms":        float64(healthyDur.Nanoseconds()) / 1e6,
				"failover_ms":       float64(failDur.Nanoseconds()) / 1e6,
				"slowdown":          float64(failDur.Nanoseconds()) / float64(healthyDur.Nanoseconds()),
				"rpc_count":         float64(failSt.RPCs),
				"rpc_count_healthy": float64(healthySt.RPCs),
				"retries":           float64(failSt.Retries),
				"failovers":         float64(failSt.Failovers),
				"byte_identical":    1,
				"shards":            float64(shards),
				"replicas":          2,
			},
		}
		fmt.Printf("benchmarking %s ... healthy=%v failover=%v failovers=%d\n", name, healthyDur.Round(time.Millisecond), failDur.Round(time.Millisecond), failSt.Failovers)
	}

	// Selective remote exploration: the deferred events workload over
	// the fabric. Manifest stats skip whole shard servers, zone maps
	// skip chunks inside the touched one — the counters assert that only
	// the non-pruned chunks ever crossed the wire.
	{
		manifest, sq, totalChunks, err := exp.LazySelectiveInputs(n, 4, tmp)
		if err != nil {
			return err
		}
		remoteManifest, stop, err := startShardServers(manifest, filepath.Join(tmp, "remote_events.atlm"))
		if err != nil {
			return err
		}
		opener := remote.NewOpener(remote.Options{})
		set, err := shard.OpenWith(remoteManifest, shard.Options{Remote: opener, Defer: true})
		if err != nil {
			stop()
			return err
		}
		name := fmt.Sprintf("RemoteExploreSelective/events_n=%d/shards=4/deferred", n)
		run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cart, err := core.NewCartographer(set.Table(), core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cart.Explore(sq); err != nil {
					b.Fatal(err)
				}
			}
		})
		st := opener.Stats()
		addMetrics(name, map[string]float64{
			"rpc_count":      float64(st.RPCs),
			"bytes_wire":     float64(st.BytesIn),
			"chunks_fetched": float64(st.ChunkFetches),
			"total_chunks":   float64(totalChunks),
			"opened_shards":  float64(set.OpenedShards()),
			"shards":         4,
		})

		set.Close()

		// The same cold exploration once more, under a resource ledger and
		// through a fresh opener: the per-query bill must equal the
		// opener's counter deltas over the same window — the ledger is the
		// same accounting, scoped to one query. A fresh opener/set pays the
		// full cold bill, so the recorded numbers are the query's true
		// wire cost, not a cache echo.
		opener2 := remote.NewOpener(remote.Options{})
		set2, err := shard.OpenWith(remoteManifest, shard.Options{Remote: opener2, Defer: true})
		if err != nil {
			stop()
			return err
		}
		settle := func() remote.Stats {
			prev := opener2.Stats()
			for {
				time.Sleep(25 * time.Millisecond)
				cur := opener2.Stats()
				if cur == prev {
					return cur
				}
				prev = cur
			}
		}
		before := settle()
		led := obsv.NewLedger()
		cart, err := core.NewCartographer(set2.Table(), core.DefaultOptions())
		if err != nil {
			stop()
			return err
		}
		if _, err := cart.ExploreCtx(obsv.WithLedger(context.Background(), led), sq); err != nil {
			stop()
			return err
		}
		led.Finish()
		after := settle()
		bill := led.Snapshot()
		if bill.RPCs != after.RPCs-before.RPCs || bill.BytesWire != after.BytesIn-before.BytesIn {
			stop()
			return fmt.Errorf("ledger disagrees with opener counters: ledger rpcs=%d wire=%d, deltas rpcs=%d wire=%d",
				bill.RPCs, bill.BytesWire, after.RPCs-before.RPCs, after.BytesIn-before.BytesIn)
		}
		addMetrics(name, map[string]float64{
			"ledger_rpcs":           float64(bill.RPCs),
			"ledger_bytes_wire":     float64(bill.BytesWire),
			"ledger_chunks_decoded": float64(bill.StoreChunksDecoded),
			"ledger_bytes_read":     float64(bill.BytesRead),
		})
		fmt.Printf("benchmarking %s ... ledger rpcs=%d wire=%dB decoded=%d (matches opener deltas)\n",
			name, bill.RPCs, bill.BytesWire, bill.StoreChunksDecoded)
		set2.Close()
		stop()
	}

	// Unsharded cold baseline: the same census data opened from a single
	// .atl store — identical storage and chunking, no shard layer.
	single, err := colstore.Open(storePath)
	if err != nil {
		return err
	}
	run(fmt.Sprintf("ExploreCold/census_n=%d/singlefile", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cart, err := core.NewCartographer(single.Table(), core.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cart.Explore(q); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Zone-map pruned selective scan vs the same scan without chunk
	// metadata.
	chunkedEvents, plainEvents, pq, err := exp.PrunedScanScenario(n)
	if err != nil {
		return err
	}
	scanBench := func(t *storage.Table) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			sel := bitvec.NewFull(n)
			for i := 0; i < b.N; i++ {
				sel.Fill()
				if err := engine.EvalAndIntoOpts(t, pq, sel, engine.ScanOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	run(fmt.Sprintf("EvalRange/events_n=%d/pruned", n), scanBench(chunkedEvents))
	run(fmt.Sprintf("EvalRange/events_n=%d/full", n), scanBench(plainEvents))

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark records to %s\n", len(results), path)
	return nil
}

// writeOverloadJSON runs the overload scenario: a coordinator with a
// bounded admission gate sized to the machine is hit with 4× its
// capacity of simultaneous explorations. The admitted queries must
// complete within 3× the uncontended p99 and return byte-identical
// results; the excess must be shed promptly with 429 + Retry-After,
// not absorbed into an unbounded queue.
func writeOverloadJSON(path string, quick bool) error {
	n := 300_000
	if quick {
		n = 60_000
	}
	// Size the gate the way an operator would: enough slots that the
	// admitted set saturates the cores without queries fighting each
	// other for them. Per-query parallelism × slots ≈ core count, so an
	// admitted query's latency stays close to the uncontended one — the
	// property the 3× budget below asserts.
	maxConcurrent := runtime.NumCPU() / 2
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	queueDepth := maxConcurrent
	clients := 4 * (maxConcurrent + queueDepth)
	tbl := datagen.Census(n, 1)
	opts := core.DefaultOptions()
	opts.Parallelism = 2
	srv := server.New(tbl, opts)
	srv.SetAdmission(server.AdmissionConfig{
		MaxConcurrent: maxConcurrent,
		QueueDepth:    queueDepth,
		QueueTimeout:  30 * time.Second,
		QueryTimeout:  2 * time.Minute,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqBody := []byte(`{"cql": "EXPLORE census WHERE age BETWEEN 20 AND 70"}`)
	post := func() (int, time.Duration, []byte, string, error) {
		start := time.Now()
		resp, err := http.Post(ts.URL+"/api/explore", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			return 0, 0, nil, "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, 0, nil, "", err
		}
		return resp.StatusCode, time.Since(start), body, resp.Header.Get("Retry-After"), nil
	}
	// canonical strips the per-run fields (wall-clock, resource bill)
	// so bodies compare on the exploration result alone.
	canonical := func(body []byte) (string, error) {
		var dto server.ResultDTO
		if err := json.Unmarshal(body, &dto); err != nil {
			return "", err
		}
		dto.ElapsedMs = 0
		dto.Ledger = nil
		dto.Profile = nil
		dto.ProfilePerfetto = nil
		b, err := json.Marshal(dto)
		return string(b), err
	}
	p99 := func(durs []time.Duration) time.Duration {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		return durs[len(durs)*99/100]
	}

	// Uncontended baseline: sequential explorations after a warmup.
	const baselineRounds = 15
	var reference string
	var uncontended []time.Duration
	for i := 0; i < baselineRounds+2; i++ {
		status, dur, body, _, err := post()
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("uncontended exploration answered %d: %s", status, body)
		}
		if i < 2 {
			continue // warmup: cold caches, first-touch allocations
		}
		canon, err := canonical(body)
		if err != nil {
			return err
		}
		if reference == "" {
			reference = canon
		} else if canon != reference {
			return fmt.Errorf("uncontended explorations disagree with each other")
		}
		uncontended = append(uncontended, dur)
	}
	uncontendedP99 := p99(uncontended)

	// Overload: every client fires at once. Slots + queue bound the
	// admitted set; the rest must be shed with 429 on arrival.
	type outcome struct {
		status     int
		dur        time.Duration
		canon      string
		retryAfter string
		err        error
	}
	outcomes := make([]outcome, clients)
	var start, wg sync.WaitGroup
	start.Add(1)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			status, dur, body, retryAfter, err := post()
			o := outcome{status: status, dur: dur, retryAfter: retryAfter, err: err}
			if err == nil && status == http.StatusOK {
				o.canon, o.err = canonical(body)
			}
			outcomes[i] = o
		}(i)
	}
	start.Done()
	wg.Wait()

	var admitted []time.Duration
	shed, retryAfterSeen := 0, 0
	for _, o := range outcomes {
		if o.err != nil {
			return o.err
		}
		switch o.status {
		case http.StatusOK:
			if o.canon != reference {
				return fmt.Errorf("admitted overload exploration differs from the uncontended result")
			}
			admitted = append(admitted, o.dur)
		case http.StatusTooManyRequests:
			shed++
			if o.retryAfter != "" {
				retryAfterSeen++
			}
		default:
			return fmt.Errorf("overload exploration answered %d, want 200 or 429", o.status)
		}
	}
	if len(admitted) == 0 {
		return fmt.Errorf("overload run admitted no explorations")
	}
	if shed == 0 {
		return fmt.Errorf("overload run shed no explorations at %d× capacity", clients/(maxConcurrent+queueDepth))
	}
	if retryAfterSeen != shed {
		return fmt.Errorf("%d of %d shed responses carried a Retry-After header", retryAfterSeen, shed)
	}
	admittedP99 := p99(admitted)
	slowdown := float64(admittedP99) / float64(uncontendedP99)
	fmt.Printf("overload: %d clients → %d admitted, %d shed (429); uncontended p99 %v, admitted p99 %v (%.2fx)\n",
		clients, len(admitted), shed, uncontendedP99.Round(time.Millisecond), admittedP99.Round(time.Millisecond), slowdown)
	// The 3× latency budget is asserted at full scale only: a quick run
	// is a ~10ms exploration where scheduler noise alone is x-sized.
	if slowdown > 3.0 {
		if quick {
			fmt.Printf("warning: admitted p99 %.2fx the uncontended p99, above the 3x budget at quick scale (noise-prone)\n", slowdown)
		} else {
			return fmt.Errorf("admitted p99 %v is %.2fx the uncontended p99 %v, above the 3x budget",
				admittedP99, slowdown, uncontendedP99)
		}
	}

	name := fmt.Sprintf("OverloadAdmission/census_n=%d/max=%d/queue=%d/clients=%d", n, maxConcurrent, queueDepth, clients)
	results := map[string]benchRecord{
		name: {
			NsPerOp:    float64(admittedP99.Nanoseconds()),
			Iterations: clients,
			Metrics: map[string]float64{
				"uncontended_p99_ms": float64(uncontendedP99.Nanoseconds()) / 1e6,
				"admitted_p99_ms":    float64(admittedP99.Nanoseconds()) / 1e6,
				"slowdown":           slowdown,
				"clients":            float64(clients),
				"max_concurrent":     float64(maxConcurrent),
				"queue_depth":        float64(queueDepth),
				"admitted":           float64(len(admitted)),
				"shed_429":           float64(shed),
				"byte_identical":     1,
			},
		},
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote overload results to %s\n", path)
	return nil
}
