// Command atlasbench regenerates the paper's figures and claims as
// printed experiments (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results), and can emit machine-readable
// micro-benchmark results for tracking the performance trajectory
// across PRs.
//
// Usage:
//
//	atlasbench -list
//	atlasbench -exp E1,E4
//	atlasbench -all [-quick]
//	atlasbench -benchjson BENCH_1.json [-quick]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/storage"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments")
		ids       = flag.String("exp", "", "comma-separated experiment ids to run (e.g. E1,E4)")
		all       = flag.Bool("all", false, "run every experiment")
		quick     = flag.Bool("quick", false, "reduced input sizes")
		benchJSON = flag.String("benchjson", "", "write pipeline micro-benchmark results to this JSON file (name → ns/op, allocs/op)")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-5s %-55s %s\n", "id", "title", "paper artifact")
		for _, e := range exp.All() {
			fmt.Printf("%-5s %-55s %s\n", e.ID, e.Title, e.Artifact)
		}
		return
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "atlasbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var todo []exp.Experiment
	switch {
	case *all:
		todo = exp.All()
	case *ids != "":
		for _, id := range strings.Split(*ids, ",") {
			id = strings.TrimSpace(id)
			e, ok := exp.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "atlasbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	failed := 0
	for _, e := range todo {
		fmt.Printf("\n######## %s — %s (%s) ########\n", e.ID, e.Title, e.Artifact)
		start := time.Now()
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "atlasbench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Printf("(%s completed in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// benchRecord is one benchmark's machine-readable result.
type benchRecord struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// writeBenchJSON runs the pipeline micro-benchmarks via testing.Benchmark
// and writes {name: {ns_per_op, allocs_per_op, bytes_per_op}} to path, so
// the perf trajectory can be tracked mechanically across PRs.
func writeBenchJSON(path string, quick bool) error {
	n := 1_000_000
	if quick {
		n = 100_000
	}
	tbl := datagen.Census(n, 1)
	q := query.New("census")

	exploreBench := func(parallelism int) func(b *testing.B) {
		return func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Parallelism = parallelism
			cart, err := core.NewCartographer(tbl, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cart.Explore(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	results := map[string]benchRecord{}
	run := func(name string, fn func(b *testing.B)) {
		fmt.Printf("benchmarking %s ...\n", name)
		r := testing.Benchmark(fn)
		results[name] = benchRecord{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}
	run(fmt.Sprintf("Explore/census_n=%d/parallel", n), exploreBench(0))
	run(fmt.Sprintf("Explore/census_n=%d/serial", n), exploreBench(1))

	// Cold start: opening the columnar store vs re-parsing CSV, on the
	// same scenarios as the repo-root micro-benchmarks.
	tmp, err := os.MkdirTemp("", "atlasbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	storePath, csvData, err := exp.ColdStartInputs(n, 1, tmp)
	if err != nil {
		return err
	}
	run(fmt.Sprintf("StoreOpen/census_n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := colstore.Open(storePath)
			if err != nil {
				b.Fatal(err)
			}
			if s.Table().NumRows() != n {
				b.Fatal("short read")
			}
		}
	})
	run(fmt.Sprintf("CSVParse/census_n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t, err := storage.ReadCSV("census", bytes.NewReader(csvData), nil)
			if err != nil {
				b.Fatal(err)
			}
			if t.NumRows() != n {
				b.Fatal("short read")
			}
		}
	})

	// Sharded Explore: the same census table as a sharded store at
	// several shard counts. Cold explorations (fresh stat cache per
	// iteration) exercise the per-shard partial-statistics fan-out;
	// shards=1 runs the identical code path on a single file, so the
	// single-file baseline and the sharded scenario are directly
	// comparable. Scaling with shard count needs multiple cores.
	shardCounts := []int{1, 2, 4}
	if quick {
		shardCounts = []int{1, 2}
	}
	for _, shards := range shardCounts {
		manifest, err := exp.ShardedInputs(tbl, shards, tmp)
		if err != nil {
			return err
		}
		set, err := shard.Open(manifest)
		if err != nil {
			return err
		}
		run(fmt.Sprintf("ShardedOpen/census_n=%d/shards=%d", n, shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := shard.Open(manifest)
				if err != nil {
					b.Fatal(err)
				}
				if s.Table().NumRows() != n {
					b.Fatal("short open")
				}
			}
		})
		run(fmt.Sprintf("ShardedExploreCold/census_n=%d/shards=%d", n, shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cart, err := core.NewCartographerWith(set.Table(), core.DefaultOptions(), set.Provider(0))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cart.Explore(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Unsharded cold baseline: the same census data opened from a single
	// .atl store — identical storage and chunking, no shard layer.
	single, err := colstore.Open(storePath)
	if err != nil {
		return err
	}
	run(fmt.Sprintf("ExploreCold/census_n=%d/singlefile", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cart, err := core.NewCartographer(single.Table(), core.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cart.Explore(q); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Zone-map pruned selective scan vs the same scan without chunk
	// metadata.
	chunkedEvents, plainEvents, pq, err := exp.PrunedScanScenario(n)
	if err != nil {
		return err
	}
	scanBench := func(t *storage.Table) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			sel := bitvec.NewFull(n)
			for i := 0; i < b.N; i++ {
				sel.Fill()
				if err := engine.EvalAndIntoOpts(t, pq, sel, engine.ScanOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	run(fmt.Sprintf("EvalRange/events_n=%d/pruned", n), scanBench(chunkedEvents))
	run(fmt.Sprintf("EvalRange/events_n=%d/full", n), scanBench(plainEvents))

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark records to %s\n", len(results), path)
	return nil
}
